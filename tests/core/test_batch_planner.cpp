#include "sunchase/core/batch_planner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core_fixture.h"
#include "obs/json_check.h"
#include "sunchase/common/error.h"
#include "sunchase/obs/query_log.h"

namespace sunchase::core {
namespace {

std::vector<BatchQuery> grid_queries(const roadnet::GridCity& city) {
  return {
      {city.node_at(0, 0), city.node_at(7, 7), TimeOfDay::hms(9, 0)},
      {city.node_at(1, 2), city.node_at(8, 5), TimeOfDay::hms(10, 0)},
      {city.node_at(9, 9), city.node_at(0, 0), TimeOfDay::hms(11, 30)},
      {city.node_at(3, 3), city.node_at(3, 3), TimeOfDay::hms(12, 0)},
      {city.node_at(5, 1), city.node_at(2, 8), TimeOfDay::hms(14, 15)},
      {city.node_at(0, 9), city.node_at(9, 0), TimeOfDay::hms(16, 0)},
  };
}

/// Bit-identical equality — no epsilon. A parallel batch must replay
/// exactly the arithmetic of the sequential search.
void expect_identical(const MlcResult& batch, const MlcResult& sequential) {
  ASSERT_EQ(batch.routes.size(), sequential.routes.size());
  for (std::size_t r = 0; r < batch.routes.size(); ++r) {
    EXPECT_EQ(batch.routes[r].cost, sequential.routes[r].cost);
    EXPECT_EQ(batch.routes[r].path.edges, sequential.routes[r].path.edges);
  }
  EXPECT_EQ(batch.stats.labels_created, sequential.stats.labels_created);
  EXPECT_EQ(batch.stats.labels_dominated, sequential.stats.labels_dominated);
  EXPECT_EQ(batch.stats.queue_pops, sequential.stats.queue_pops);
  EXPECT_EQ(batch.stats.pareto_size, sequential.stats.pareto_size);
  EXPECT_EQ(batch.stats.shortest_travel_time.value(),
            sequential.stats.shortest_travel_time.value());
}

TEST(BatchPlanner, MatchesSequentialSearchBitForBit) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  BatchPlannerOptions opt;
  opt.workers = 4;
  const BatchPlanner batch(env.world, opt);
  const MultiLabelCorrecting sequential(env.world, opt.mlc);

  const auto queries = grid_queries(city);
  const BatchResult result = batch.plan_all(queries);

  ASSERT_EQ(result.queries.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(result.queries[i].ok()) << result.queries[i].error;
    expect_identical(*result.queries[i].result,
                     sequential.search(queries[i].origin,
                                       queries[i].destination,
                                       queries[i].departure));
  }
}

TEST(BatchPlanner, SlotPricingMatchesExactBitForBitOnASlotConstantWorld) {
  // RoutingEnv is slot-constant (uniform traffic, slot-indexed shading,
  // constant panel), so the 8-worker SlotQuantized batch — all workers
  // sharing one SlotCostCache — must reproduce the Exact sequential
  // search bit for bit, and the shared cache must actually get hits.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  BatchPlannerOptions opt;
  opt.workers = 8;
  opt.mlc.pricing = PricingMode::SlotQuantized;
  const BatchPlanner batch(env.world, opt);
  MlcOptions exact = opt.mlc;
  exact.pricing = PricingMode::Exact;
  const MultiLabelCorrecting sequential(env.world, exact);

  auto& hits = obs::Registry::global().counter("slotcache.hits");
  const std::uint64_t hits_before = hits.value();

  const auto queries = grid_queries(city);
  const BatchResult result = batch.plan_all(queries);
  EXPECT_GT(hits.value(), hits_before);

  ASSERT_EQ(result.queries.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(result.queries[i].ok()) << result.queries[i].error;
    expect_identical(*result.queries[i].result,
                     sequential.search(queries[i].origin,
                                       queries[i].destination,
                                       queries[i].departure));
  }
}

TEST(BatchPlanner, SlotPricingIsDeterministicAcrossRuns) {
  // Two back-to-back slot-mode batches (cold cache vs warm cache) must
  // agree bit for bit: materialization state never leaks into results.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  BatchPlannerOptions opt;
  opt.workers = 8;
  opt.mlc.pricing = PricingMode::SlotQuantized;
  const BatchPlanner batch(env.world, opt);
  const auto queries = grid_queries(city);
  const BatchResult cold = batch.plan_all(queries);
  const BatchResult warm = batch.plan_all(queries);
  ASSERT_EQ(cold.queries.size(), warm.queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(cold.queries[i].ok());
    ASSERT_TRUE(warm.queries[i].ok());
    expect_identical(*cold.queries[i].result, *warm.queries[i].result);
  }
}

TEST(BatchPlanner, ResultsComeBackInInputOrder) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  BatchPlannerOptions opt;
  opt.workers = 3;
  const BatchPlanner batch(env.world, opt);
  const MultiLabelCorrecting sequential(env.world, opt.mlc);

  const auto queries = grid_queries(city);
  const BatchResult result = batch.plan_all(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(result.queries[i].ok());
    // The lexicographically-first travel time identifies the query.
    EXPECT_EQ(result.queries[i]
                  .result->routes.front()
                  .cost.travel_time.value(),
              sequential
                  .search(queries[i].origin, queries[i].destination,
                          queries[i].departure)
                  .routes.front()
                  .cost.travel_time.value());
  }
}

TEST(BatchPlanner, UnreachableQueryFailsAloneWithoutPoisoningTheBatch) {
  // Island node 4: reachable by nobody.
  test::SquareGraph sq(/*with_island=*/true);
  const roadnet::NodeId island = sq.island;
  test::RoutingEnv env(sq.graph);
  BatchPlannerOptions opt;
  opt.workers = 2;
  const BatchPlanner batch(env.world, opt);

  const std::vector<BatchQuery> queries = {
      {0, 3, TimeOfDay::hms(10, 0)},
      {0, island, TimeOfDay::hms(10, 0)},  // unreachable -> RoutingError
      {1, 3, TimeOfDay::hms(10, 0)},
  };
  const BatchResult result = batch.plan_all(queries);

  ASSERT_EQ(result.queries.size(), 3u);
  EXPECT_TRUE(result.queries[0].ok());
  EXPECT_FALSE(result.queries[1].ok());
  EXPECT_NE(result.queries[1].error.find("unreachable"), std::string::npos);
  EXPECT_TRUE(result.queries[2].ok());
  EXPECT_EQ(result.stats.succeeded, 2u);
  EXPECT_EQ(result.stats.failed, 1u);
}

TEST(BatchPlanner, EmptyBatchIsANoOp) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const BatchPlanner batch(env.world);
  const BatchResult result = batch.plan_all({});
  EXPECT_TRUE(result.queries.empty());
  EXPECT_EQ(result.stats.query_count, 0u);
  EXPECT_EQ(result.stats.queries_per_second, 0.0);
}

TEST(BatchPlanner, MoreWorkersThanQueriesIsClamped) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  BatchPlannerOptions opt;
  opt.workers = 16;
  const BatchPlanner batch(env.world, opt);
  const BatchResult result =
      batch.plan_all({{0, 3, TimeOfDay::hms(10, 0)}});
  ASSERT_EQ(result.queries.size(), 1u);
  EXPECT_TRUE(result.queries[0].ok());
  EXPECT_EQ(result.stats.workers, 1u);
}

TEST(BatchPlanner, StatsAggregateOverSuccessfulQueries) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  BatchPlannerOptions opt;
  opt.workers = 2;
  const BatchPlanner batch(env.world, opt);
  const MultiLabelCorrecting sequential(env.world, opt.mlc);

  const auto queries = grid_queries(city);
  const BatchResult result = batch.plan_all(queries);

  std::size_t labels = 0, pareto = 0;
  for (const auto& q : queries) {
    const auto single = sequential.search(q.origin, q.destination,
                                          q.departure);
    labels += single.stats.labels_created;
    pareto += single.stats.pareto_size;
  }
  EXPECT_EQ(result.stats.totals.labels_created, labels);
  EXPECT_EQ(result.stats.totals.pareto_size, pareto);
  EXPECT_EQ(result.stats.query_count, queries.size());
  EXPECT_EQ(result.stats.succeeded, queries.size());
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  EXPECT_GT(result.stats.queries_per_second, 0.0);
}

TEST(BatchPlanner, LatencyPercentilesComeFromTheBatchHistogram) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  BatchPlannerOptions opt;
  opt.workers = 2;
  const BatchPlanner batch(env.world, opt);
  const BatchResult result = batch.plan_all(grid_queries(city));

  // One histogram observation per query; percentiles come from the
  // shared HistogramSnapshot::quantile, not batch-local math.
  EXPECT_EQ(result.stats.latency.count, grid_queries(city).size());
  EXPECT_GT(result.stats.latency.quantile(0.50), 0.0);
  EXPECT_GE(result.stats.latency.quantile(0.95),
            result.stats.latency.quantile(0.50));
  EXPECT_GE(result.stats.latency.max, result.stats.latency.quantile(0.95));
  // Per-query in-worker latency can never exceed the batch wall clock.
  EXPECT_LE(result.stats.latency.max, result.stats.wall_seconds + 1e-9);
}

TEST(BatchPlanner, EmptyBatchHasZeroLatencyPercentiles) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const BatchPlanner batch(env.world);
  const BatchResult result = batch.plan_all({});
  EXPECT_EQ(result.stats.latency.count, 0u);
  EXPECT_EQ(result.stats.latency.quantile(0.50), 0.0);
  EXPECT_EQ(result.stats.latency.quantile(0.95), 0.0);
  EXPECT_EQ(result.stats.latency.max, 0.0);
}

TEST(BatchPlanner, SelectionOffByDefault) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const BatchPlanner batch(env.world);
  const BatchResult result =
      batch.plan_all({{0, 3, TimeOfDay::hms(10, 0)}});
  ASSERT_TRUE(result.queries[0].ok());
  EXPECT_FALSE(result.queries[0].selection.has_value());
}

TEST(BatchPlanner, RunSelectionYieldsCandidatesPerQuery) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  BatchPlannerOptions opt;
  opt.workers = 2;
  opt.run_selection = true;
  const BatchPlanner batch(env.world, opt);
  const BatchResult result = batch.plan_all(grid_queries(city));

  for (const auto& q : result.queries) {
    ASSERT_TRUE(q.ok()) << q.error;
    ASSERT_TRUE(q.selection.has_value());
    // Selection always reports the shortest-time route first.
    ASSERT_FALSE(q.selection->candidates.empty());
    EXPECT_TRUE(q.selection->candidates.front().is_shortest_time);
    EXPECT_LE(q.selection->candidates.size(), q.result->routes.size());
  }
}

TEST(BatchPlanner, QueryLogGetsExactlyOneRecordPerQuery) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  std::ostringstream sink;
  obs::QueryLog log(sink);
  BatchPlannerOptions opt;
  opt.workers = 4;
  opt.run_selection = true;
  opt.query_log = &log;
  const BatchPlanner batch(env.world, opt);

  const auto queries = grid_queries(city);
  const BatchResult result = batch.plan_all(queries);
  ASSERT_EQ(result.stats.succeeded, queries.size());
  EXPECT_EQ(log.record_count(), queries.size());

  // One valid JSONL line per query, each carrying its batch index
  // exactly once (workers write concurrently; no torn lines allowed).
  std::vector<std::string> lines;
  std::istringstream in(sink.str());
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), queries.size());
  std::set<std::string> indices;
  for (const std::string& l : lines) {
    EXPECT_TRUE(test::json_parses(l)) << l;
    EXPECT_NE(l.find("\"mode\":\"batch\""), std::string::npos);
    const auto at = l.find("\"index\":");
    ASSERT_NE(at, std::string::npos) << l;
    const auto start = at + 8;
    indices.insert(l.substr(start, l.find(',', start) - start));
  }
  EXPECT_EQ(indices.size(), queries.size());
}

TEST(BatchPlanner, EveryQueryCarriesPositiveCpuAccounting) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  std::ostringstream sink;
  obs::QueryLog log(sink);
  BatchPlannerOptions opt;
  opt.workers = 4;
  opt.query_log = &log;
  const BatchPlanner batch(env.world, opt);

  const BatchResult result = batch.plan_all(grid_queries(city));
  ASSERT_GT(result.stats.succeeded, 0u);
  // Batch-level CPU is the sum over workers; each successful query
  // contributes its own strictly positive worker-thread delta.
  EXPECT_GT(result.stats.cpu_seconds, 0.0);
  double summed = 0.0;
  for (const auto& q : result.queries) {
    if (!q.ok()) continue;
    EXPECT_GT(q.cpu_seconds, 0.0);
    summed += q.cpu_seconds;
  }
  EXPECT_DOUBLE_EQ(result.stats.cpu_seconds, summed);

  // Every JSONL record — this is the per-query resource-accounting
  // contract — carries cpu_ms > 0.
  std::istringstream in(sink.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.find("\"status\":\"error\"") != std::string::npos) continue;
    const auto at = line.find("\"cpu_ms\":");
    ASSERT_NE(at, std::string::npos) << line;
    EXPECT_GT(std::strtod(line.c_str() + at + 9, nullptr), 0.0) << line;
  }
  EXPECT_EQ(lines, result.queries.size());
}

TEST(BatchPlanner, FailedQueriesStillProduceAnErrorRecord) {
  test::SquareGraph sq(/*with_island=*/true);
  const roadnet::NodeId island = sq.island;
  test::RoutingEnv env(sq.graph);
  std::ostringstream sink;
  obs::QueryLog log(sink);
  BatchPlannerOptions opt;
  opt.workers = 2;
  opt.query_log = &log;
  const BatchPlanner batch(env.world, opt);

  const std::vector<BatchQuery> queries = {
      {0, 3, TimeOfDay::hms(10, 0)},
      {0, island, TimeOfDay::hms(10, 0)},  // unreachable -> RoutingError
      {1, 3, TimeOfDay::hms(10, 0)},
  };
  const BatchResult result = batch.plan_all(queries);
  EXPECT_EQ(result.stats.failed, 1u);
  EXPECT_EQ(log.record_count(), queries.size());
  const std::string text = sink.str();
  EXPECT_NE(text.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(text.find("unreachable"), std::string::npos);
}

TEST(BatchPlanner, InvalidMlcOptionsRejectedAtConstruction) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  BatchPlannerOptions bad;
  bad.mlc.max_time_factor = -1.0;
  EXPECT_THROW(BatchPlanner(env.world, bad), InvalidArgument);
}

}  // namespace
}  // namespace sunchase::core
