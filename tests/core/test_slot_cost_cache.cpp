#include "sunchase/core/slot_cost_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core_fixture.h"
#include "sunchase/common/error.h"
#include "sunchase/obs/metrics.h"

namespace sunchase::core {
namespace {

obs::Counter& hits() { return obs::Registry::global().counter("slotcache.hits"); }
obs::Counter& misses() {
  return obs::Registry::global().counter("slotcache.misses");
}

TEST(SlotCostCache, EntriesMatchEdgeCriteriaAtTheSlotStart) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  const SlotCostCache& cache = env.world->slot_cache(test::RoutingEnv::kLv);

  // Bit-exact, not approximate: the cache must run the same arithmetic
  // as edge_criteria, just hoisted out of the search loop.
  for (const int slot : {0, 33, 40, TimeOfDay::kSlotsPerDay - 1}) {
    const TimeOfDay when = TimeOfDay::slot_start(slot);
    for (roadnet::EdgeId e = 0; e < 8; ++e) {
      const SlotCostCache::Entry& entry = cache.at(e, slot);
      EXPECT_EQ(entry.criteria, detail::edge_criteria(env.map, env.lv, e, when));
      const solar::EdgeSolar direct = env.map.evaluate(e, when);
      EXPECT_EQ(entry.solar.travel_time.value(), direct.travel_time.value());
      EXPECT_EQ(entry.solar.solar_time.value(), direct.solar_time.value());
      EXPECT_EQ(entry.solar.shaded_time.value(), direct.shaded_time.value());
      EXPECT_EQ(entry.solar.energy_in.value(), direct.energy_in.value());
      EXPECT_EQ(entry.solar.shade_ratio, direct.shade_ratio);
    }
  }
}

TEST(SlotCostCache, RejectsOutOfRangeSlots) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const SlotCostCache& cache = env.world->slot_cache(test::RoutingEnv::kLv);
  EXPECT_THROW((void)cache.at(0, -1), InvalidArgument);
  EXPECT_THROW((void)cache.at(0, TimeOfDay::kSlotsPerDay), InvalidArgument);
  EXPECT_NO_THROW((void)cache.at(0, 0));
  EXPECT_NO_THROW((void)cache.at(0, TimeOfDay::kSlotsPerDay - 1));
}

TEST(SlotCostCache, LazyColumnsAndBoundedMemoryAccounting) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const SlotCostCache& cache = env.world->slot_cache(test::RoutingEnv::kLv);
  EXPECT_EQ(cache.filled_slots(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);

  (void)cache.at(0, 40);
  EXPECT_EQ(cache.filled_slots(), 1u);
  EXPECT_EQ(cache.bytes(),
            sq.graph.edge_count() * sizeof(SlotCostCache::Entry));
  (void)cache.at(1, 40);  // same column: no growth
  EXPECT_EQ(cache.filled_slots(), 1u);
  (void)cache.at(0, 41);
  EXPECT_EQ(cache.filled_slots(), 2u);
  EXPECT_EQ(cache.bytes(),
            2 * sq.graph.edge_count() * sizeof(SlotCostCache::Entry));
}

TEST(SlotCostCache, CountsMissOnFirstTouchThenHits) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const SlotCostCache& cache = env.world->slot_cache(test::RoutingEnv::kLv);
  const std::uint64_t h0 = hits().value();
  const std::uint64_t m0 = misses().value();

  (void)cache.at(0, 50);
  EXPECT_EQ(misses().value() - m0, 1u);
  EXPECT_EQ(hits().value() - h0, 0u);

  (void)cache.at(0, 50);
  (void)cache.at(1, 50);
  EXPECT_EQ(misses().value() - m0, 1u);
  EXPECT_EQ(hits().value() - h0, 2u);
}

TEST(SlotCostCache, ConcurrentReadersShareOneMaterialization) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  const SlotCostCache& cache = env.world->slot_cache(test::RoutingEnv::kLv);

  // 8 threads hammer the same two columns; the fill must happen once
  // per column and every reader must see the published entries.
  constexpr int kThreads = 8;
  constexpr int kReads = 200;
  std::atomic<int> mismatches{0};
  const TimeOfDay at40 = TimeOfDay::slot_start(40);
  const Criteria expected = detail::edge_criteria(env.map, env.lv, 0, at40);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kReads; ++i) {
        const roadnet::EdgeId e = static_cast<roadnet::EdgeId>(
            static_cast<std::size_t>(i) % city.graph().edge_count());
        const int slot = 40 + (i % 2);
        const SlotCostCache::Entry& entry = cache.at(e, slot);
        if (e == 0 && slot == 40 && !(entry.criteria == expected))
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.filled_slots(), 2u);
}

TEST(SlotCostCache, PricingTimeQuantizesOnlyInSlotMode) {
  const TimeOfDay when = TimeOfDay::hms(10, 7, 33);
  EXPECT_EQ(pricing_time(when, PricingMode::Exact), when);
  EXPECT_EQ(pricing_time(when, PricingMode::SlotQuantized),
            TimeOfDay::slot_start(40));
  EXPECT_STREQ(pricing_name(PricingMode::Exact), "exact");
  EXPECT_STREQ(pricing_name(PricingMode::SlotQuantized), "slot");
}

TEST(SlotCostCache, DayBoundaryPricesIdenticallyInBothModesNeverSlot96) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);

  // A label entering an edge inside the final slot (86100-86399), and
  // the saturated end-of-day clock from_seconds(86400) -> 86399: both
  // must quantize to slot 95 — slot 96 does not exist — and under a
  // slot-constant world (UniformTraffic, slot-indexed shading) the
  // quantized price is bit-identical to the exact one.
  const SlotCostCache& cache = env.world->slot_cache(test::RoutingEnv::kLv);
  for (const TimeOfDay entry :
       {TimeOfDay::from_seconds(86100.0), TimeOfDay::from_seconds(86399.0),
        TimeOfDay::from_seconds(static_cast<double>(TimeOfDay::kSecondsPerDay))}) {
    ASSERT_EQ(entry.slot_index(), TimeOfDay::kSlotsPerDay - 1);
    const TimeOfDay quantized =
        pricing_time(entry, PricingMode::SlotQuantized);
    EXPECT_EQ(quantized, TimeOfDay::slot_start(TimeOfDay::kSlotsPerDay - 1));
    for (roadnet::EdgeId e = 0; e < sq.graph.edge_count(); ++e) {
      const Criteria exact = detail::edge_criteria(env.map, env.lv, e, entry);
      EXPECT_EQ(cache.at(e, entry.slot_index()).criteria, exact);
    }
  }
}

}  // namespace
}  // namespace sunchase::core
