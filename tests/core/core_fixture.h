// Shared fixture for the core routing tests: a small graph with a
// deterministic synthetic shading profile bundled into one immutable
// world snapshot, plus a brute-force Pareto enumerator to validate the
// multi-label correcting search against.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sunchase/core/edge_cost.h"
#include "sunchase/core/metrics.h"
#include "sunchase/core/mlc.h"
#include "sunchase/core/world.h"
#include "sunchase/ev/consumption.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/solar/input_map.h"
#include "test_helpers.h"

namespace sunchase::test {

/// Deterministic per-edge shading: edge e is shaded by a fraction that
/// depends on (e, slot) through a hash — stable, varied, in [0, 0.9].
inline shadow::ShadedFractionFn hashed_shading() {
  return [](roadnet::EdgeId e, TimeOfDay when) {
    const auto h = static_cast<std::uint64_t>(e) * 2654435761u +
                   static_cast<std::uint64_t>(when.slot_index()) * 97u;
    return static_cast<double>(h % 900) / 1000.0;
  };
}

/// A ready-to-route environment around any graph: one World snapshot
/// carrying the graph (copied), uniform traffic, the hashed shading
/// profile, constant 200 W panel power and two vehicles — the LV
/// prototype at index kLv and the Tesla Model S at index kTesla. The
/// reference members are views into the snapshot, for tests that poke
/// at individual components.
struct RoutingEnv {
  static constexpr std::size_t kLv = 0;
  static constexpr std::size_t kTesla = 1;

  explicit RoutingEnv(const roadnet::RoadGraph& g,
                      MetersPerSecond uniform_speed = kmh(15.0))
      : world(make_world(g, uniform_speed)),
        graph(world->graph()),
        traffic(world->traffic()),
        profile(world->shading()),
        map(world->solar_map()),
        lv(world->vehicle(kLv)),
        tesla(world->vehicle(kTesla)) {}

  [[nodiscard]] static core::WorldPtr make_world(
      const roadnet::RoadGraph& g, MetersPerSecond uniform_speed = kmh(15.0)) {
    return core::World::create(make_init(g, uniform_speed));
  }

  /// The snapshot recipe alone, for tests that publish through a
  /// WorldStore or derive variants before creating.
  [[nodiscard]] static core::WorldInit make_init(
      const roadnet::RoadGraph& g, MetersPerSecond uniform_speed = kmh(15.0)) {
    auto graph = std::make_shared<const roadnet::RoadGraph>(g);
    core::WorldInit init;
    init.graph = graph;
    init.traffic =
        std::make_shared<const roadnet::UniformTraffic>(uniform_speed);
    init.shading = std::make_shared<const shadow::ShadingProfile>(
        shadow::ShadingProfile::compute(*graph, hashed_shading(),
                                        TimeOfDay::hms(8, 0),
                                        TimeOfDay::hms(18, 0)));
    init.panel_power = solar::constant_panel_power(Watts{200.0});
    init.vehicles.push_back(
        std::shared_ptr<const ev::ConsumptionModel>(ev::make_lv_prototype()));
    init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
        ev::make_tesla_model_s()));
    return init;
  }

  core::WorldPtr world;
  const roadnet::RoadGraph& graph;
  const roadnet::TrafficModel& traffic;
  const shadow::ShadingProfile& profile;
  const solar::SolarInputMap& map;
  const ev::ConsumptionModel& lv;
  const ev::ConsumptionModel& tesla;
};

/// Enumerates every simple path origin->destination (DFS) and prices it
/// with *static* edge criteria at `departure`, then filters to the
/// Pareto frontier. Ground truth for MLC with time_dependent = false.
inline std::vector<core::ParetoRoute> brute_force_pareto(
    const solar::SolarInputMap& map, const ev::ConsumptionModel& vehicle,
    roadnet::NodeId origin, roadnet::NodeId destination,
    TimeOfDay departure) {
  const auto& graph = map.graph();
  std::vector<core::ParetoRoute> all;
  std::vector<roadnet::EdgeId> stack;
  std::vector<bool> visited(graph.node_count(), false);

  std::function<void(roadnet::NodeId, core::Criteria)> dfs =
      [&](roadnet::NodeId u, core::Criteria cost) {
        if (u == destination) {
          all.push_back(core::ParetoRoute{roadnet::Path{stack}, cost});
          return;
        }
        visited[u] = true;
        for (const roadnet::EdgeId e : graph.out_edges(u)) {
          const roadnet::NodeId v = graph.edge(e).to;
          if (visited[v]) continue;
          stack.push_back(e);
          dfs(v, cost + core::detail::edge_criteria(map, vehicle, e,
                                                    departure));
          stack.pop_back();
        }
        visited[u] = false;
      };
  dfs(origin, core::Criteria{});

  std::vector<core::ParetoRoute> frontier;
  for (const auto& candidate : all) {
    bool dominated = false;
    for (const auto& other : all) {
      if (core::dominates(other.cost, candidate.cost)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    // Drop duplicates with equivalent cost (MLC also keeps one each).
    const bool duplicate = std::any_of(
        frontier.begin(), frontier.end(), [&](const core::ParetoRoute& kept) {
          return core::equivalent(kept.cost, candidate.cost);
        });
    if (!duplicate) frontier.push_back(candidate);
  }
  return frontier;
}

}  // namespace sunchase::test
