// Shared fixture for the core routing tests: a small graph with a
// deterministic synthetic shading profile and everything the planner
// needs, plus a brute-force Pareto enumerator to validate the
// multi-label correcting search against.
#pragma once

#include <functional>
#include <vector>

#include "sunchase/core/edge_cost.h"
#include "sunchase/core/metrics.h"
#include "sunchase/core/mlc.h"
#include "sunchase/ev/consumption.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/solar/input_map.h"
#include "test_helpers.h"

namespace sunchase::test {

/// Deterministic per-edge shading: edge e is shaded by a fraction that
/// depends on (e, slot) through a hash — stable, varied, in [0, 0.9].
inline shadow::ShadedFractionFn hashed_shading() {
  return [](roadnet::EdgeId e, TimeOfDay when) {
    const auto h = static_cast<std::uint64_t>(e) * 2654435761u +
                   static_cast<std::uint64_t>(when.slot_index()) * 97u;
    return static_cast<double>(h % 900) / 1000.0;
  };
}

/// A ready-to-route environment around any graph.
struct RoutingEnv {
  explicit RoutingEnv(const roadnet::RoadGraph& g,
                      MetersPerSecond uniform_speed = kmh(15.0))
      : graph(g),
        traffic(uniform_speed),
        profile(shadow::ShadingProfile::compute(g, hashed_shading(),
                                                TimeOfDay::hms(8, 0),
                                                TimeOfDay::hms(18, 0))),
        map(g, profile, traffic, solar::constant_panel_power(Watts{200.0})),
        lv(ev::make_lv_prototype()),
        tesla(ev::make_tesla_model_s()) {}

  const roadnet::RoadGraph& graph;
  roadnet::UniformTraffic traffic;
  shadow::ShadingProfile profile;
  solar::SolarInputMap map;
  std::unique_ptr<ev::ConsumptionModel> lv;
  std::unique_ptr<ev::ConsumptionModel> tesla;
};

/// Enumerates every simple path origin->destination (DFS) and prices it
/// with *static* edge criteria at `departure`, then filters to the
/// Pareto frontier. Ground truth for MLC with time_dependent = false.
inline std::vector<core::ParetoRoute> brute_force_pareto(
    const solar::SolarInputMap& map, const ev::ConsumptionModel& vehicle,
    roadnet::NodeId origin, roadnet::NodeId destination,
    TimeOfDay departure) {
  const auto& graph = map.graph();
  std::vector<core::ParetoRoute> all;
  std::vector<roadnet::EdgeId> stack;
  std::vector<bool> visited(graph.node_count(), false);

  std::function<void(roadnet::NodeId, core::Criteria)> dfs =
      [&](roadnet::NodeId u, core::Criteria cost) {
        if (u == destination) {
          all.push_back(core::ParetoRoute{roadnet::Path{stack}, cost});
          return;
        }
        visited[u] = true;
        for (const roadnet::EdgeId e : graph.out_edges(u)) {
          const roadnet::NodeId v = graph.edge(e).to;
          if (visited[v]) continue;
          stack.push_back(e);
          dfs(v, cost + core::edge_criteria(map, vehicle, e, departure));
          stack.pop_back();
        }
        visited[u] = false;
      };
  dfs(origin, core::Criteria{});

  std::vector<core::ParetoRoute> frontier;
  for (const auto& candidate : all) {
    bool dominated = false;
    for (const auto& other : all) {
      if (core::dominates(other.cost, candidate.cost)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    // Drop duplicates with equivalent cost (MLC also keeps one each).
    const bool duplicate = std::any_of(
        frontier.begin(), frontier.end(), [&](const core::ParetoRoute& kept) {
          return core::equivalent(kept.cost, candidate.cost);
        });
    if (!duplicate) frontier.push_back(candidate);
  }
  return frontier;
}

}  // namespace sunchase::test
