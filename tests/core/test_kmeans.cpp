#include "sunchase/core/kmeans.h"

#include <gtest/gtest.h>

#include "sunchase/common/assert.h"

namespace sunchase::core {
namespace {

TEST(Manhattan, KnownDistances) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0, 0}, {1, 2, 3}), 6.0);
  EXPECT_DOUBLE_EQ(manhattan({1, 1, 1}, {1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(manhattan({-1, 0, 0}, {1, 0, 0}), 2.0);
}

TEST(Centroid, MeanOfMembers) {
  const std::vector<LabelVector> pts{{0, 0, 0}, {2, 4, 6}, {4, 2, 0}};
  const LabelVector c = centroid(pts, {0, 1, 2});
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 2.0);
}

TEST(Centroid, SubsetOnly) {
  const std::vector<LabelVector> pts{{0, 0, 0}, {2, 2, 2}, {100, 100, 100}};
  const LabelVector c = centroid(pts, {0, 1});
  EXPECT_DOUBLE_EQ(c[0], 1.0);
}

TEST(Centroid, EmptyMembersViolatesContract) {
  const std::vector<LabelVector> pts{{0, 0, 0}};
  EXPECT_THROW((void)centroid(pts, {}), ContractViolation);
}

TEST(ClusterQuality, ZeroForIdenticalPoints) {
  const std::vector<LabelVector> pts{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}};
  EXPECT_DOUBLE_EQ(cluster_quality(pts, {0, 1, 2}), 0.0);
}

TEST(ClusterQuality, MeanDistanceToCentroid) {
  // Two points at +-1 along one axis: centroid 0, mean distance 1.
  const std::vector<LabelVector> pts{{-1, 0, 0}, {1, 0, 0}};
  EXPECT_DOUBLE_EQ(cluster_quality(pts, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(cluster_quality(pts, {}), 0.0);
}

TEST(BisectingKMeans, EmptyInput) {
  EXPECT_TRUE(bisecting_kmeans({}).clusters.empty());
}

TEST(BisectingKMeans, SingletonStaysWhole) {
  const Clustering c = bisecting_kmeans({{0.5, 0.5, 0.5}});
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0].size(), 1u);
}

TEST(BisectingKMeans, SeparatesTwoObviousGroups) {
  // Tight group near origin, tight group near (1,1,1).
  std::vector<LabelVector> pts;
  for (int i = 0; i < 5; ++i) {
    const double j = i * 0.004;
    pts.push_back({j, j, j});
    pts.push_back({1.0 - j, 1.0 - j, 1.0 - j});
  }
  BisectKMeansOptions opt;
  opt.quality_threshold = 0.1;
  const Clustering c = bisecting_kmeans(pts, opt);
  ASSERT_EQ(c.clusters.size(), 2u);
  // Each cluster must be pure: all members on the same side of 0.5.
  for (const auto& cluster : c.clusters) {
    const bool low_side = pts[cluster.front()][0] < 0.5;
    for (const std::size_t i : cluster)
      EXPECT_EQ(pts[i][0] < 0.5, low_side);
  }
}

TEST(BisectingKMeans, QualityThresholdControlsGranularity) {
  std::vector<LabelVector> pts;
  for (int i = 0; i < 20; ++i)
    pts.push_back({i / 19.0, (19 - i) / 19.0, 0.5});
  BisectKMeansOptions coarse;
  coarse.quality_threshold = 0.8;
  BisectKMeansOptions fine;
  fine.quality_threshold = 0.05;
  EXPECT_LE(bisecting_kmeans(pts, coarse).clusters.size(),
            bisecting_kmeans(pts, fine).clusters.size());
}

TEST(BisectingKMeans, AllClustersMeetThresholdOrAreSingletons) {
  std::vector<LabelVector> pts;
  unsigned state = 12345u;
  auto next = [&]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) / 16777216.0;
  };
  for (int i = 0; i < 40; ++i) pts.push_back({next(), next(), next()});
  BisectKMeansOptions opt;
  opt.quality_threshold = 0.15;
  const Clustering c = bisecting_kmeans(pts, opt);
  for (const auto& cluster : c.clusters) {
    if (cluster.size() > 1) {
      EXPECT_LT(cluster_quality(pts, cluster), opt.quality_threshold);
    }
  }
}

TEST(BisectingKMeans, PartitionCoversAllPointsExactlyOnce) {
  std::vector<LabelVector> pts;
  for (int i = 0; i < 25; ++i)
    pts.push_back({i * 0.04, (i % 5) * 0.2, (i % 3) * 0.33});
  const Clustering c = bisecting_kmeans(pts);
  std::vector<int> seen(pts.size(), 0);
  for (const auto& cluster : c.clusters)
    for (const std::size_t i : cluster) ++seen[i];
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(BisectingKMeans, IdenticalPointsDoNotLoopForever) {
  // Coincident points with a quality threshold of zero would split
  // forever if degenerate splits were retried.
  std::vector<LabelVector> pts(10, LabelVector{0.3, 0.3, 0.3});
  BisectKMeansOptions opt;
  opt.quality_threshold = 0.0;
  const Clustering c = bisecting_kmeans(pts, opt);
  std::size_t total = 0;
  for (const auto& cluster : c.clusters) total += cluster.size();
  EXPECT_EQ(total, pts.size());
}

TEST(BisectingKMeans, DeterministicForSeed) {
  std::vector<LabelVector> pts;
  for (int i = 0; i < 30; ++i)
    pts.push_back({i * 0.033, 1.0 - i * 0.033, (i % 7) * 0.14});
  const Clustering a = bisecting_kmeans(pts);
  const Clustering b = bisecting_kmeans(pts);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i)
    EXPECT_EQ(a.clusters[i], b.clusters[i]);
}

TEST(NormalizeDimensions, MapsToUnitBox) {
  const auto norm = normalize_dimensions({{10, 100, 5}, {20, 300, 5},
                                          {15, 200, 5}});
  EXPECT_DOUBLE_EQ(norm[0][0], 0.0);
  EXPECT_DOUBLE_EQ(norm[1][0], 1.0);
  EXPECT_DOUBLE_EQ(norm[2][0], 0.5);
  EXPECT_DOUBLE_EQ(norm[0][1], 0.0);
  EXPECT_DOUBLE_EQ(norm[1][1], 1.0);
  // Constant dimension maps to zero, not NaN.
  EXPECT_DOUBLE_EQ(norm[0][2], 0.0);
  EXPECT_DOUBLE_EQ(norm[2][2], 0.0);
}

TEST(NormalizeDimensions, EmptyInput) {
  EXPECT_TRUE(normalize_dimensions({}).empty());
}

}  // namespace
}  // namespace sunchase::core
