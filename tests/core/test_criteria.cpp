#include "sunchase/core/criteria.h"

#include <gtest/gtest.h>

namespace sunchase::core {
namespace {

Criteria make(double tt, double st, double ec) {
  return Criteria{Seconds{tt}, Seconds{st}, WattHours{ec}};
}

TEST(Criteria, AdditionIsComponentWise) {
  const Criteria sum = make(10, 2, 5) + make(1, 3, 0.5);
  EXPECT_DOUBLE_EQ(sum.travel_time.value(), 11.0);
  EXPECT_DOUBLE_EQ(sum.shaded_time.value(), 5.0);
  EXPECT_DOUBLE_EQ(sum.energy_out.value(), 5.5);
}

TEST(Dominance, StrictlyBetterInAllDominates) {
  EXPECT_TRUE(dominates(make(1, 1, 1), make(2, 2, 2)));
  EXPECT_FALSE(dominates(make(2, 2, 2), make(1, 1, 1)));
}

TEST(Dominance, BetterInOneEqualElsewhereDominates) {
  EXPECT_TRUE(dominates(make(1, 5, 5), make(2, 5, 5)));
  EXPECT_TRUE(dominates(make(5, 5, 1), make(5, 5, 2)));
}

TEST(Dominance, EqualVectorsDoNotDominate) {
  EXPECT_FALSE(dominates(make(3, 3, 3), make(3, 3, 3)));
}

TEST(Dominance, IncomparableVectorsNeitherDominates) {
  const Criteria a = make(1, 9, 5);
  const Criteria b = make(9, 1, 5);
  EXPECT_FALSE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
}

TEST(Dominance, EpsilonTiesAreNotStrict) {
  const Criteria a = make(1.0, 1.0, 1.0);
  const Criteria b = make(1.0 + 1e-12, 1.0, 1.0);
  EXPECT_FALSE(dominates(a, b));  // difference below tolerance
  EXPECT_TRUE(equivalent(a, b));
}

TEST(Equivalent, DetectsNearEquality) {
  EXPECT_TRUE(equivalent(make(1, 2, 3), make(1, 2, 3)));
  EXPECT_FALSE(equivalent(make(1, 2, 3), make(1, 2, 3.001)));
}

TEST(LexLess, OrdersByTravelTimeFirst) {
  EXPECT_TRUE(lex_less(make(1, 9, 9), make(2, 0, 0)));
  EXPECT_FALSE(lex_less(make(2, 0, 0), make(1, 9, 9)));
}

TEST(LexLess, TieBreaksByShadedTimeThenEnergy) {
  EXPECT_TRUE(lex_less(make(1, 2, 9), make(1, 3, 0)));
  EXPECT_TRUE(lex_less(make(1, 2, 3), make(1, 2, 4)));
  EXPECT_FALSE(lex_less(make(1, 2, 3), make(1, 2, 3)));
}

// Property: dominance is a strict partial order — irreflexive,
// asymmetric, transitive — over a deterministic sample.
class DominanceOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(DominanceOrderProperty, PartialOrderAxioms) {
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u + 7u;
  auto next = [&]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % 5;  // small grid of values forces ties
  };
  const Criteria a = make(next(), next(), next());
  const Criteria b = make(next(), next(), next());
  const Criteria c = make(next(), next(), next());
  EXPECT_FALSE(dominates(a, a));
  if (dominates(a, b)) {
    EXPECT_FALSE(dominates(b, a));
  }
  if (dominates(a, b) && dominates(b, c)) {
    EXPECT_TRUE(dominates(a, c));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTriples, DominanceOrderProperty,
                         ::testing::Range(1, 60));

}  // namespace
}  // namespace sunchase::core
