#include "sunchase/core/astar.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "sunchase/common/rng.h"
#include "sunchase/roadnet/citygen.h"
#include "test_helpers.h"

namespace sunchase::core {
namespace {

TEST(AStar, MatchesDijkstraOnSquare) {
  test::SquareGraph sq;
  const roadnet::UniformTraffic traffic(kmh(15.0));
  const auto d = detail::shortest_time_path(sq.graph, traffic, 0, 3,
                                    TimeOfDay::hms(10, 0));
  const auto a = detail::shortest_time_path_astar(sq.graph, traffic, 0, 3,
                                          TimeOfDay::hms(10, 0), kmh(15.0));
  ASSERT_TRUE(d && a);
  EXPECT_NEAR(a->travel_time.value(), d->travel_time.value(), 1e-9);
}

TEST(AStar, UnreachableAndErrors) {
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_node({45.52, -73.57});
  b.add_edge(0, 1);
  const roadnet::RoadGraph g = std::move(b).build();
  const roadnet::UniformTraffic traffic(kmh(15.0));
  EXPECT_FALSE(detail::shortest_time_path_astar(g, traffic, 0, 2,
                                        TimeOfDay::hms(9, 0), kmh(15.0)));
  EXPECT_THROW((void)detail::shortest_time_path_astar(g, traffic, 0, 9,
                                              TimeOfDay::hms(9, 0),
                                              kmh(15.0)),
               GraphError);
  EXPECT_THROW((void)detail::shortest_time_path_astar(g, traffic, 0, 1,
                                              TimeOfDay::hms(9, 0),
                                              MetersPerSecond{0.0}),
               InvalidArgument);
}

TEST(AStar, SettlesFewerNodesThanFullSearch) {
  roadnet::GridCityOptions opt;
  opt.rows = 14;
  opt.cols = 14;
  const roadnet::GridCity city(opt);
  const roadnet::UrbanTraffic traffic{roadnet::UrbanTraffic::Options{}};
  // Destination adjacent to the origin's corner: A* should home in.
  const auto a = detail::shortest_time_path_astar(
      city.graph(), traffic, city.node_at(0, 0), city.node_at(2, 2),
      TimeOfDay::hms(10, 0), kmh(17.0));
  ASSERT_TRUE(a.has_value());
  EXPECT_LT(a->nodes_settled, city.graph().node_count() / 2);
}

TEST(AStar, OriginEqualsDestination) {
  test::SquareGraph sq;
  const roadnet::UniformTraffic traffic(kmh(15.0));
  const auto a = detail::shortest_time_path_astar(sq.graph, traffic, 1, 1,
                                          TimeOfDay::hms(9, 0), kmh(15.0));
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->path.empty());
  EXPECT_DOUBLE_EQ(a->travel_time.value(), 0.0);
}

// Property: A* with an admissible bound equals Dijkstra's travel time
// across random grid cities, OD pairs and departure times.
class AStarEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AStarEquivalence, SameOptimalTime) {
  roadnet::GridCityOptions opt;
  opt.rows = 9;
  opt.cols = 9;
  opt.seed = GetParam();
  const roadnet::GridCity city(opt);
  roadnet::UrbanTraffic::Options topt;
  topt.seed = GetParam() * 3 + 1;
  const roadnet::UrbanTraffic traffic{topt};

  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    const auto o = static_cast<roadnet::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(
                               city.graph().node_count()) - 1));
    const auto d = static_cast<roadnet::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(
                               city.graph().node_count()) - 1));
    const TimeOfDay dep = TimeOfDay::hms(
        static_cast<int>(rng.uniform_int(8, 17)), 0);
    const auto dj = detail::shortest_time_path(city.graph(), traffic, o, d, dep);
    // The admissible bound: nothing drives faster than max free flow.
    const auto as = detail::shortest_time_path_astar(city.graph(), traffic, o, d,
                                             dep, kmh(17.0));
    ASSERT_EQ(dj.has_value(), as.has_value());
    if (dj) {
      EXPECT_NEAR(as->travel_time.value(), dj->travel_time.value(), 1e-6);
      EXPECT_TRUE(is_connected(as->path, city.graph()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarEquivalence,
                         ::testing::Values(3, 17, 29, 71, 113));

}  // namespace
}  // namespace sunchase::core
