// World snapshot codec: a saved world mmap-loaded in a fresh reader
// must be indistinguishable from the world that was saved — same plan
// results bit for bit under both pricing modes, warm cache columns
// riding along zero-copy, and the mmap-backed world surviving the same
// concurrent batch + publish contract as a heap-built one (the
// SnapshotCodec suites run under the CI ThreadSanitizer job).
#include "sunchase/core/world_codec.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core_fixture.h"
#include "sunchase/common/error.h"
#include "sunchase/core/batch_planner.h"
#include "sunchase/core/world.h"
#include "sunchase/core/world_store.h"
#include "sunchase/roadnet/citygen.h"

namespace sunchase::core {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

WorldPtr city_world() {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  return World::create(test::RoutingEnv::make_init(city.graph()), 3);
}

std::vector<BatchQuery> city_queries() {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  std::vector<BatchQuery> queries;
  for (int i = 0; i < 12; ++i)
    queries.push_back({city.node_at(i % 4, i % 3),
                       city.node_at(6 + i % 3, 8),
                       TimeOfDay::hms(9 + i % 8, 15)});
  return queries;
}

/// Flattened (costs, path edges) of every successful query, for
/// bit-exact comparison across save/load.
std::vector<double> fingerprint(const WorldPtr& world, PricingMode pricing,
                                std::size_t workers = 2) {
  BatchPlannerOptions opt;
  opt.workers = workers;
  opt.mlc.max_time_factor = 1.4;
  opt.mlc.pricing = pricing;
  const BatchPlanner planner(world, opt);
  const BatchResult batch = planner.plan_all(city_queries());
  std::vector<double> fp;
  for (const BatchQueryResult& q : batch.queries) {
    if (!q.ok()) continue;
    for (const ParetoRoute& r : q.result->routes) {
      fp.push_back(r.cost.travel_time.value());
      fp.push_back(r.cost.shaded_time.value());
      fp.push_back(r.cost.energy_out.value());
      for (const roadnet::EdgeId e : r.path.edges)
        fp.push_back(static_cast<double>(e));
    }
  }
  return fp;
}

TEST(SnapshotCodec, RoundTripPreservesTheWorldShape) {
  const WorldPtr original = city_world();
  const std::string path = temp_path("codec_shape.scsnap");
  save_world_snapshot(*original, path);
  const WorldPtr loaded = load_world_snapshot(path);

  EXPECT_EQ(loaded->version(), original->version());
  EXPECT_EQ(loaded->graph().node_count(), original->graph().node_count());
  EXPECT_EQ(loaded->graph().edge_count(), original->graph().edge_count());
  EXPECT_EQ(loaded->vehicle_count(), original->vehicle_count());
  for (std::size_t v = 0; v < original->vehicle_count(); ++v)
    EXPECT_EQ(loaded->vehicle(v).name(), original->vehicle(v).name());
  EXPECT_EQ(loaded->shading().fractions().size(),
            original->shading().fractions().size());
}

TEST(SnapshotCodec, PlanResultsAreBitIdenticalInBothPricingModes) {
  const WorldPtr original = city_world();
  const std::string path = temp_path("codec_fingerprint.scsnap");
  save_world_snapshot(*original, path);
  const WorldPtr loaded = load_world_snapshot(path);

  EXPECT_EQ(fingerprint(loaded, PricingMode::Exact),
            fingerprint(original, PricingMode::Exact));
  EXPECT_EQ(fingerprint(loaded, PricingMode::SlotQuantized),
            fingerprint(original, PricingMode::SlotQuantized));
}

TEST(SnapshotCodec, WarmSlotCacheColumnsRideAlong) {
  const WorldPtr original = city_world();
  // Slot pricing materializes cache columns; the snapshot carries them.
  const std::vector<double> warm =
      fingerprint(original, PricingMode::SlotQuantized);
  ASSERT_GT(original->slot_cache().filled_slots(), 0u);

  const std::string path = temp_path("codec_warm.scsnap");
  save_world_snapshot(*original, path);
  const WorldPtr loaded = load_world_snapshot(path);
  EXPECT_EQ(loaded->slot_cache().filled_slots(),
            original->slot_cache().filled_slots());
  EXPECT_EQ(fingerprint(loaded, PricingMode::SlotQuantized), warm);
}

TEST(SnapshotCodec, ColdSaveRefillsColumnsBitIdentically) {
  const WorldPtr original = city_world();
  const std::vector<double> warm =
      fingerprint(original, PricingMode::SlotQuantized);

  SaveOptions options;
  options.include_slot_cache = false;
  const std::string path = temp_path("codec_cold.scsnap");
  save_world_snapshot(*original, path, options);
  const WorldPtr loaded = load_world_snapshot(path);
  EXPECT_EQ(loaded->slot_cache().filled_slots(), 0u);
  // Lazy refill on the loaded world reproduces the same columns.
  EXPECT_EQ(fingerprint(loaded, PricingMode::SlotQuantized), warm);
}

TEST(SnapshotCodec, UnserializableTrafficModelFailsToSave) {
  /// Not one of the library's parameterized models — there is nothing
  /// faithful the codec could persist.
  class OpaqueTraffic final : public roadnet::TrafficModel {
   public:
    [[nodiscard]] MetersPerSecond speed(const roadnet::RoadGraph&,
                                        roadnet::EdgeId,
                                        TimeOfDay) const override {
      return kmh(17.0);
    }
  };
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  WorldInit init = test::RoutingEnv::make_init(city.graph());
  init.traffic = std::make_shared<const OpaqueTraffic>();
  const WorldPtr world = World::create(std::move(init));
  EXPECT_THROW(
      save_world_snapshot(*world, temp_path("codec_opaque.scsnap")),
      SnapshotError);
}

TEST(SnapshotCodec, LoadNamesTheDamagedSection) {
  const WorldPtr original = city_world();
  const std::string path = temp_path("codec_corrupt.scsnap");
  save_world_snapshot(*original, path);

  const SnapshotInfo info = inspect_world_snapshot(path);
  ASSERT_TRUE(info.intact);
  std::uint64_t fractions_offset = 0;
  for (const SnapshotSectionInfo& s : info.sections)
    if (s.name == "shading_fractions") fractions_offset = s.offset;
  ASSERT_GT(fractions_offset, 0u);

  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(static_cast<std::streamoff>(fractions_offset) + 5);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x02);
  file.seekp(static_cast<std::streamoff>(fractions_offset) + 5);
  file.write(&byte, 1);
  file.close();

  try {
    (void)load_world_snapshot(path);
    FAIL() << "corrupt snapshot loaded";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("shading_fractions"), std::string::npos) << what;
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  }
  EXPECT_FALSE(inspect_world_snapshot(path).intact);
}

TEST(SnapshotCodec, MmapWorldSurvivesEightWorkerBatchDuringPublishes) {
  const std::string path = temp_path("codec_concurrent.scsnap");
  {
    const WorldPtr original = city_world();
    save_world_snapshot(*original, path);
  }
  // A store seeded from the mapping: workers plan on the mmap-backed
  // arrays while a publisher swaps in fresh heap-built versions.
  const WorldPtr loaded = load_world_snapshot(path);
  WorldStore store(loaded);

  BatchPlannerOptions opt;
  opt.workers = 8;
  opt.mlc.max_time_factor = 1.4;
  const BatchPlanner pinned(store.current(), opt);
  const std::vector<BatchQuery> queries = city_queries();

  auto flatten = [](const BatchResult& batch) {
    std::vector<double> fp;
    for (const BatchQueryResult& q : batch.queries) {
      if (!q.ok()) continue;
      for (const ParetoRoute& r : q.result->routes) {
        fp.push_back(r.cost.travel_time.value());
        fp.push_back(r.cost.energy_out.value());
      }
    }
    return fp;
  };
  const std::vector<double> quiet = flatten(pinned.plan_all(queries));

  std::atomic<bool> stop{false};
  auto writer = std::async(std::launch::async, [&] {
    int published = 0;
    while (!stop.load(std::memory_order_relaxed) && published < 16) {
      (void)store.publish(store.current()->recipe());
      ++published;
    }
    return published;
  });
  const std::vector<double> contended = flatten(pinned.plan_all(queries));
  stop.store(true, std::memory_order_relaxed);
  EXPECT_GT(writer.get(), 0);
  EXPECT_EQ(quiet, contended);
}

}  // namespace
}  // namespace sunchase::core
