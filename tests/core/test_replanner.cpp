#include "sunchase/core/replanner.h"

#include <gtest/gtest.h>

#include "core_fixture.h"
#include "sunchase/common/error.h"

namespace sunchase::core {
namespace {

class ReplannerTest : public ::testing::Test {
 protected:
  ReplannerTest() : city_(roadnet::GridCityOptions{}), env_(city_.graph()) {}

  /// Live power: 200 W until `cloud_at`, then `after` W.
  static solar::PanelPowerFn cloud_front(TimeOfDay cloud_at, double after) {
    return [cloud_at, after](TimeOfDay t) {
      return t < cloud_at ? Watts{200.0} : Watts{after};
    };
  }

  roadnet::GridCity city_;
  test::RoutingEnv env_;
};

TEST_F(ReplannerTest, StablePowerNeverReplans) {
  const auto outcome = drive_with_replanning(
      env_.world, solar::constant_panel_power(Watts{200.0}),
      city_.node_at(1, 1), city_.node_at(8, 8), TimeOfDay::hms(10, 0));
  EXPECT_EQ(outcome.replans, 0);
  EXPECT_EQ(path_destination(outcome.driven, city_.graph()),
            city_.node_at(8, 8));
  EXPECT_TRUE(is_connected(outcome.driven, city_.graph()));
}

TEST_F(ReplannerTest, CloudFrontTriggersReplanning) {
  // Power collapses 90 s into the trip: the replanner must notice at
  // the next intersection.
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const auto live = cloud_front(dep.advanced_by(Seconds{90.0}), 60.0);
  const auto outcome = drive_with_replanning(
      env_.world, live, city_.node_at(1, 1), city_.node_at(8, 8), dep);
  EXPECT_GE(outcome.replans, 1);
  EXPECT_EQ(path_destination(outcome.driven, city_.graph()),
            city_.node_at(8, 8));
}

TEST_F(ReplannerTest, OutcomesAgreeWhenNothingChanges) {
  const auto power = solar::constant_panel_power(Watts{200.0});
  const auto with = drive_with_replanning(
      env_.world, power, city_.node_at(2, 2), city_.node_at(7, 7),
      TimeOfDay::hms(11, 0));
  const auto without = drive_without_replanning(
      env_.world, power, city_.node_at(2, 2), city_.node_at(7, 7),
      TimeOfDay::hms(11, 0));
  EXPECT_EQ(with.driven.edges, without.driven.edges);
  EXPECT_NEAR(with.energy_in.value(), without.energy_in.value(), 1e-9);
  EXPECT_NEAR(with.total_time.value(), without.total_time.value(), 1e-9);
}

TEST_F(ReplannerTest, ReplanningNeverLosesToStalePlanOnNet) {
  // Under a mid-trip power collapse, the replanner's net energy must
  // not be worse than blindly following the stale plan (both pay real
  // consumption; the replanner stops detouring for sun that is gone).
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const auto live = cloud_front(dep.advanced_by(Seconds{60.0}), 40.0);
  const auto with = drive_with_replanning(
      env_.world, live, city_.node_at(1, 1), city_.node_at(8, 8), dep);
  const auto without = drive_without_replanning(
      env_.world, live, city_.node_at(1, 1), city_.node_at(8, 8), dep);
  const double net_with = with.energy_in.value() - with.energy_out.value();
  const double net_without =
      without.energy_in.value() - without.energy_out.value();
  EXPECT_GE(net_with, net_without - 0.2);  // small slack: grid is benign
}

TEST_F(ReplannerTest, MinIntervalThrottlesReplans) {
  // Power oscillating every call would otherwise replan at every node.
  int calls = 0;
  const solar::PanelPowerFn flapping = [&calls](TimeOfDay) {
    return Watts{(calls++ % 2 == 0) ? 200.0 : 80.0};
  };
  ReplanOptions opt;
  opt.min_replan_interval = Seconds{3600.0};  // once per hour max
  const auto outcome = drive_with_replanning(
      env_.world, flapping, city_.node_at(1, 1), city_.node_at(8, 8),
      TimeOfDay::hms(10, 0), opt);
  EXPECT_LE(outcome.replans, 1);
}

TEST_F(ReplannerTest, NullPowerRejected) {
  EXPECT_THROW((void)drive_with_replanning(env_.world, nullptr, 0, 1,
                                           TimeOfDay::hms(10, 0)),
               InvalidArgument);
  EXPECT_THROW((void)drive_without_replanning(env_.world, nullptr, 0, 1,
                                              TimeOfDay::hms(10, 0)),
               InvalidArgument);
}

TEST_F(ReplannerTest, UnreachableThrows) {
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_node({45.52, -73.57});
  b.add_edge(0, 1);
  const roadnet::RoadGraph g = std::move(b).build();
  test::RoutingEnv env(g);
  EXPECT_THROW(
      (void)drive_with_replanning(env.world,
                                  solar::constant_panel_power(Watts{200.0}),
                                  0, 2, TimeOfDay::hms(10, 0)),
      RoutingError);
}

}  // namespace
}  // namespace sunchase::core
