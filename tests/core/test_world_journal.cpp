// The WorldStore journal: durable publishes append world-<v>.scsnap
// files and repoint MANIFEST atomically; boot-time load_latest()
// restores the newest intact version and walks past torn or corrupt
// tails instead of aborting. These suites run under the CI
// ThreadSanitizer job (WorldJournal matches its filter).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core_fixture.h"
#include "sunchase/common/error.h"
#include "sunchase/core/world_store.h"
#include "sunchase/roadnet/citygen.h"

namespace sunchase::core {
namespace {

namespace fs = std::filesystem;

WorldInit city_init() {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  return test::RoutingEnv::make_init(city.graph());
}

/// A fresh (empty) journal directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string manifest_of(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST");
  std::string line;
  std::getline(in, line);
  return line;
}

/// Truncates `path` to `keep` bytes — a simulated torn write (the
/// atomic rename normally makes this impossible; a crashed copy or a
/// bad disk does not care).
void truncate_file(const std::string& path, std::uintmax_t keep) {
  fs::resize_file(path, keep);
}

TEST(WorldJournal, PublishAppendsSnapshotsAndRepointsManifest) {
  const std::string dir = fresh_dir("journal_publish");
  WorldStore store(city_init());
  store.enable_journal(JournalOptions{dir});

  EXPECT_TRUE(fs::exists(dir + "/world-1.scsnap"));
  EXPECT_EQ(manifest_of(dir), "world-1.scsnap");

  (void)store.publish(store.current()->recipe());
  (void)store.publish(store.current()->recipe());
  EXPECT_TRUE(fs::exists(dir + "/world-2.scsnap"));
  EXPECT_TRUE(fs::exists(dir + "/world-3.scsnap"));
  EXPECT_EQ(manifest_of(dir), "world-3.scsnap");

  const JournalState state = store.journal_state();
  EXPECT_TRUE(state.enabled);
  EXPECT_EQ(state.directory, dir);
  EXPECT_EQ(state.persisted_version, 3u);
  EXPECT_EQ(state.persist_failures, 0u);
  EXPECT_EQ(state.snapshots_on_disk, 3u);
}

TEST(WorldJournal, LoadLatestRestoresTheNewestVersion) {
  const std::string dir = fresh_dir("journal_restore");
  {
    WorldStore store(city_init());
    store.enable_journal(JournalOptions{dir});
    (void)store.publish(store.current()->recipe());
  }
  const LoadLatestResult latest = WorldStore::load_latest(dir);
  ASSERT_NE(latest.world, nullptr);
  EXPECT_EQ(latest.world->version(), 2u);
  EXPECT_EQ(latest.loaded_from, dir + "/world-2.scsnap");
  EXPECT_EQ(latest.skipped_corrupt, 0u);

  // A store adopted from the restored world continues the version
  // sequence without rewriting the snapshot it booted from.
  WorldStore revived(latest.world);
  revived.enable_journal(JournalOptions{dir});
  (void)revived.publish(revived.current()->recipe());
  EXPECT_EQ(revived.version(), 3u);
  EXPECT_TRUE(fs::exists(dir + "/world-3.scsnap"));
  EXPECT_EQ(manifest_of(dir), "world-3.scsnap");
}

TEST(WorldJournal, TornTailFallsBackToTheNewestIntactVersion) {
  const std::string dir = fresh_dir("journal_torn");
  {
    WorldStore store(city_init());
    store.enable_journal(JournalOptions{dir});
    (void)store.publish(store.current()->recipe());
    (void)store.publish(store.current()->recipe());
  }
  // Tear the newest file mid-payload; the MANIFEST still names it.
  truncate_file(dir + "/world-3.scsnap", 100);

  const LoadLatestResult latest = WorldStore::load_latest(dir);
  ASSERT_NE(latest.world, nullptr);
  EXPECT_EQ(latest.world->version(), 2u);
  EXPECT_EQ(latest.skipped_corrupt, 1u);
  ASSERT_EQ(latest.errors.size(), 1u);
  EXPECT_NE(latest.errors[0].find("world-3.scsnap"), std::string::npos)
      << latest.errors[0];
}

TEST(WorldJournal, WalksPastMultipleCorruptTailsByChecksum) {
  const std::string dir = fresh_dir("journal_multi");
  {
    WorldStore store(city_init());
    store.enable_journal(JournalOptions{dir});
    (void)store.publish(store.current()->recipe());
    (void)store.publish(store.current()->recipe());
  }
  truncate_file(dir + "/world-3.scsnap", 40);  // mid-header
  {
    // Bit-flip a payload byte of version 2: intact header, bad section.
    std::fstream f(dir + "/world-2.scsnap",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(600);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(600);
    f.write(&byte, 1);
  }
  const LoadLatestResult latest = WorldStore::load_latest(dir);
  ASSERT_NE(latest.world, nullptr);
  EXPECT_EQ(latest.world->version(), 1u);
  EXPECT_EQ(latest.skipped_corrupt, 2u);
  EXPECT_EQ(latest.errors.size(), 2u);
}

TEST(WorldJournal, ManifestNamingAMissingFileFallsBackToTheScan) {
  const std::string dir = fresh_dir("journal_badmanifest");
  {
    WorldStore store(city_init());
    store.enable_journal(JournalOptions{dir});
    (void)store.publish(store.current()->recipe());
  }
  std::ofstream(dir + "/MANIFEST") << "world-99.scsnap\n";
  const LoadLatestResult latest = WorldStore::load_latest(dir);
  ASSERT_NE(latest.world, nullptr);
  EXPECT_EQ(latest.world->version(), 2u);
}

TEST(WorldJournal, MissingOrEmptyDirectoryYieldsNullWorld) {
  const LoadLatestResult missing =
      WorldStore::load_latest(testing::TempDir() + "/journal_nonexistent");
  EXPECT_EQ(missing.world, nullptr);
  EXPECT_EQ(missing.skipped_corrupt, 0u);

  const LoadLatestResult empty =
      WorldStore::load_latest(fresh_dir("journal_empty"));
  EXPECT_EQ(empty.world, nullptr);
}

TEST(WorldJournal, DurablePersistFailureAbortsThePublish) {
  const std::string dir = fresh_dir("journal_failure");
  WorldStore store(city_init());
  store.enable_journal(JournalOptions{dir});

  // Yank the directory out from under the journal: the next durable
  // publish cannot persist, so it must not become visible and must not
  // consume the version number.
  fs::remove_all(dir);
  std::ofstream(dir) << "not a directory";
  EXPECT_THROW((void)store.publish(store.current()->recipe()),
               SnapshotError);
  EXPECT_EQ(store.version(), 1u);

  // With the directory back, the retry gets the version the failed
  // attempt would have had.
  fs::remove(dir);
  fs::create_directories(dir);
  (void)store.publish(store.current()->recipe());
  EXPECT_EQ(store.version(), 2u);
  EXPECT_TRUE(fs::exists(dir + "/world-2.scsnap"));
}

TEST(WorldJournal, EnableJournalRejectsAnUncreatableDirectory) {
  const std::string blocker = fresh_dir("journal_blocked") + "/file";
  std::ofstream(blocker) << "x";
  WorldStore store(city_init());
  EXPECT_THROW(
      store.enable_journal(JournalOptions{blocker + "/nested"}),
      SnapshotError);
  EXPECT_FALSE(store.journal_state().enabled);
}

}  // namespace
}  // namespace sunchase::core
