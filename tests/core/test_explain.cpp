// RouteExplainer: the per-edge ledger must reproduce the search's
// criteria vector exactly — the conservation invariant that proves the
// explain path prices edges with the same clock and the same arithmetic
// as the multi-label correcting search. Checked on the paper world
// (12x12 grid, exact shading, urban traffic), not a toy graph, so any
// drift between the two code paths fails here first.
#include "sunchase/core/explain.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/core_fixture.h"
#include "obs/json_check.h"
#include "sunchase/core/mlc.h"
#include "sunchase/exporter/geojson.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/shadow/scenegen.h"

namespace sunchase::core {
namespace {

/// The bench paper world (12x12 grid, generated scene, exact 15-minute
/// shading over 8:00-18:30, urban traffic), built once for the suite —
/// compute_exact is the expensive part.
struct PaperWorld {
  PaperWorld()
      : city(city_options()),
        projection(city.options().origin),
        scene(generate_scene(city.graph(), projection,
                             shadow::SceneGenOptions{})) {
    auto graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
    WorldInit init;
    init.graph = graph;
    init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
        roadnet::UrbanTraffic::Options{});
    init.shading = std::make_shared<const shadow::ShadingProfile>(
        shadow::ShadingProfile::compute_exact(*graph, scene,
                                              geo::DayOfYear{196},
                                              TimeOfDay::hms(8, 0),
                                              TimeOfDay::hms(18, 30)));
    init.panel_power = solar::constant_panel_power(Watts{200.0});
    init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
        ev::make_lv_prototype()));
    snapshot = World::create(std::move(init));
  }

  static roadnet::GridCityOptions city_options() {
    roadnet::GridCityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    return opt;
  }

  roadnet::GridCity city;
  geo::LocalProjection projection;
  shadow::Scene scene;
  WorldPtr snapshot;
};

const PaperWorld& world() {
  static const PaperWorld w;
  return w;
}

MlcResult search_a1_b1(bool time_dependent = true,
                       PricingMode pricing = PricingMode::Exact) {
  MlcOptions options;
  options.max_time_factor = 1.5;
  options.time_dependent = time_dependent;
  options.pricing = pricing;
  const MultiLabelCorrecting solver(world().snapshot, options);
  // The paper's A1 -> B1 trip at 10:00 (Table R-I).
  return solver.search(world().city.node_at(1, 1),
                       world().city.node_at(9, 10), TimeOfDay::hms(10, 0));
}

TEST(RouteExplainerTest, LedgerConservesEveryParetoRouteOnThePaperWorld) {
  const MlcResult result = search_a1_b1();
  ASSERT_FALSE(result.routes.empty());

  const RouteExplainer explainer(world().snapshot);
  for (const ParetoRoute& route : result.routes) {
    const RouteLedger ledger =
        explainer.explain(route, TimeOfDay::hms(10, 0));
    EXPECT_TRUE(ledger.conserves(route.cost, 1e-6))
        << "deviation " << ledger.max_deviation(route.cost) << " over "
        << ledger.steps.size() << " edges";
  }
}

TEST(RouteExplainerTest, ConservesUnderStaticPricingToo) {
  const MlcResult result = search_a1_b1(/*time_dependent=*/false);
  ASSERT_FALSE(result.routes.empty());

  const RouteExplainer explainer(world().snapshot);
  for (const ParetoRoute& route : result.routes) {
    const RouteLedger ledger = explainer.explain(
        route, TimeOfDay::hms(10, 0), /*time_dependent=*/false);
    EXPECT_TRUE(ledger.conserves(route.cost, 1e-6))
        << "deviation " << ledger.max_deviation(route.cost);
  }
}

TEST(RouteExplainerTest, ConservesSlotQuantizedRoutesBitExactly) {
  // The paper world runs UrbanTraffic (continuous congestion), so slot
  // and exact prices genuinely differ within a slot. A route planned
  // under SlotQuantized therefore only conserves when the ledger
  // replays the same mode — and then it must do so with zero tolerance,
  // because both paths run identical arithmetic at the slot start.
  const MlcResult result =
      search_a1_b1(/*time_dependent=*/true, PricingMode::SlotQuantized);
  ASSERT_FALSE(result.routes.empty());

  const RouteExplainer explainer(world().snapshot);
  for (const ParetoRoute& route : result.routes) {
    const RouteLedger ledger =
        explainer.explain(route, TimeOfDay::hms(10, 0),
                          /*time_dependent=*/true,
                          PricingMode::SlotQuantized);
    EXPECT_TRUE(ledger.conserves(route.cost, 0.0))
        << "deviation " << ledger.max_deviation(route.cost) << " over "
        << ledger.steps.size() << " edges";
  }
}

TEST(RouteExplainerTest, ReplayingTheWrongPricingModeBreaksConservation) {
  // The cross-check of the test above: replaying a SlotQuantized route
  // with Exact pricing must drift on at least one route (rush-hour
  // congestion changes within the 15-minute slot). If this ever stops
  // failing, the two modes have collapsed into one and the pricing
  // parameter is dead weight.
  const MlcResult result =
      search_a1_b1(/*time_dependent=*/true, PricingMode::SlotQuantized);
  ASSERT_FALSE(result.routes.empty());

  const RouteExplainer explainer(world().snapshot);
  bool any_drift = false;
  for (const ParetoRoute& route : result.routes) {
    const RouteLedger ledger =
        explainer.explain(route, TimeOfDay::hms(10, 0),
                          /*time_dependent=*/true, PricingMode::Exact);
    if (!ledger.conserves(route.cost, 0.0)) any_drift = true;
  }
  EXPECT_TRUE(any_drift);
}

TEST(RouteExplainerTest, SlotLedgerRecordsRealEntryClocksNotSlotStarts) {
  const MlcResult result =
      search_a1_b1(/*time_dependent=*/true, PricingMode::SlotQuantized);
  ASSERT_FALSE(result.routes.empty());
  const ParetoRoute& route = result.routes.front();

  const RouteExplainer explainer(world().snapshot);
  const TimeOfDay departure = TimeOfDay::hms(10, 0);
  const RouteLedger ledger = explainer.explain(
      route, departure, /*time_dependent=*/true, PricingMode::SlotQuantized);

  // Only the price is quantized; the entry column keeps the search
  // clock (departure advanced by the cumulative travel time).
  Seconds elapsed{0.0};
  for (const ExplainStep& s : ledger.steps) {
    EXPECT_DOUBLE_EQ(s.entry.seconds_since_midnight(),
                     departure.advanced_by(elapsed).seconds_since_midnight());
    EXPECT_EQ(s.slot, s.entry.slot_index());
    elapsed += s.travel_time;
  }
}

TEST(RouteExplainerTest, StepsWalkThePathWithAConsistentClock) {
  const MlcResult result = search_a1_b1();
  ASSERT_FALSE(result.routes.empty());
  const ParetoRoute& route = result.routes.front();

  const RouteExplainer explainer(world().snapshot);
  const TimeOfDay departure = TimeOfDay::hms(10, 0);
  const RouteLedger ledger = explainer.explain(route, departure);
  ASSERT_EQ(ledger.steps.size(), route.path.edges.size());

  const auto& graph = world().city.graph();
  Seconds elapsed{0.0};
  for (std::size_t i = 0; i < ledger.steps.size(); ++i) {
    const ExplainStep& s = ledger.steps[i];
    const auto& edge = graph.edge(route.path.edges[i]);
    EXPECT_EQ(s.edge, route.path.edges[i]);
    EXPECT_EQ(s.from, edge.from);
    EXPECT_EQ(s.to, edge.to);
    if (i > 0) {
      EXPECT_EQ(s.from, ledger.steps[i - 1].to);
    }
    // The entry clock is the departure advanced by the travel time
    // accumulated so far (the search's convention).
    EXPECT_DOUBLE_EQ(s.entry.seconds_since_midnight(),
                     departure.advanced_by(elapsed).seconds_since_midnight());
    EXPECT_EQ(s.slot, s.entry.slot_index());
    EXPECT_GE(s.shade_ratio, 0.0);
    EXPECT_LE(s.shade_ratio, 1.0);
    EXPECT_GT(s.travel_time.value(), 0.0);
    elapsed += s.travel_time;
  }

  // The last cumulative row and the totals tell the same story.
  const ExplainStep& last = ledger.steps.back();
  EXPECT_DOUBLE_EQ(last.cumulative.travel_time.value(),
                   ledger.totals.travel_time.value());
  EXPECT_DOUBLE_EQ(last.cumulative.energy_out.value(),
                   ledger.totals.energy_out.value());
  EXPECT_DOUBLE_EQ(last.cumulative_energy_in.value(),
                   ledger.totals.energy_in.value());
  EXPECT_NEAR(ledger.totals.solar_time.value() +
                  ledger.totals.shaded_time.value(),
              ledger.totals.travel_time.value(), 1e-6);
}

TEST(RouteExplainerTest, EmptyPathYieldsAnEmptyConservingLedger) {
  const RouteExplainer explainer(world().snapshot);
  const RouteLedger ledger =
      explainer.explain(roadnet::Path{}, TimeOfDay::hms(10, 0));
  EXPECT_TRUE(ledger.steps.empty());
  EXPECT_TRUE(ledger.conserves(Criteria{}));
  EXPECT_TRUE(test::json_parses(ledger.to_json()));
}

TEST(RouteExplainerTest, ExportsParseableJsonAndCsv) {
  const MlcResult result = search_a1_b1();
  ASSERT_FALSE(result.routes.empty());
  const RouteExplainer explainer(world().snapshot);
  const RouteLedger ledger =
      explainer.explain(result.routes.front(), TimeOfDay::hms(10, 0));

  EXPECT_TRUE(test::json_parses(ledger.to_json()));

  const std::string csv = ledger.to_csv();
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.substr(0, 4), "seq,");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, ledger.steps.size());
}

TEST(RouteExplainerTest, AnnotatedGeoJsonHasOneFeaturePerStep) {
  const MlcResult result = search_a1_b1();
  ASSERT_FALSE(result.routes.empty());
  const RouteExplainer explainer(world().snapshot);
  const RouteLedger ledger =
      explainer.explain(result.routes.front(), TimeOfDay::hms(10, 0));

  const std::string geojson =
      exporter::geojson_explained_route(world().city.graph(), ledger);
  EXPECT_TRUE(test::json_parses(geojson));
  std::size_t features = 0;
  for (std::size_t at = geojson.find("\"explain-step\"");
       at != std::string::npos;
       at = geojson.find("\"explain-step\"", at + 1))
    ++features;
  EXPECT_EQ(features, ledger.steps.size());
}

}  // namespace
}  // namespace sunchase::core
