// World snapshots and the WorldStore publication point: construction
// validation, component sharing across derived versions, the one-cache-
// per-(version, vehicle) guarantee, and the MVCC hot-swap contract —
// a publish() during an 8-worker batch neither blocks workers nor
// changes results pinned to the old version. The WorldStore suites run
// under the CI ThreadSanitizer job.
#include "sunchase/core/world.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "core_fixture.h"
#include "sunchase/common/error.h"
#include "sunchase/core/batch_planner.h"
#include "sunchase/core/explain.h"
#include "sunchase/core/planner.h"
#include "sunchase/core/world_store.h"
#include "sunchase/obs/query_log.h"

namespace sunchase::core {
namespace {

WorldInit grid_init(const roadnet::GridCity& city) {
  return test::RoutingEnv::make_init(city.graph());
}

/// A shading profile that disagrees with hashed_shading everywhere, for
/// publishing a genuinely different world version.
std::shared_ptr<const shadow::ShadingProfile> inverted_shading(
    const roadnet::RoadGraph& graph) {
  return std::make_shared<const shadow::ShadingProfile>(
      shadow::ShadingProfile::compute(
          graph,
          [](roadnet::EdgeId e, TimeOfDay when) {
            const auto h = static_cast<std::uint64_t>(e) * 2654435761u +
                           static_cast<std::uint64_t>(when.slot_index()) * 97u;
            return 0.9 - static_cast<double>(h % 900) / 1000.0;
          },
          TimeOfDay::hms(8, 0), TimeOfDay::hms(18, 0)));
}

TEST(World, CreateRejectsMissingComponents) {
  const test::SquareGraph sq;
  const WorldInit good = test::RoutingEnv::make_init(sq.graph);

  WorldInit init = good;
  init.graph = nullptr;
  EXPECT_THROW((void)World::create(std::move(init)), InvalidArgument);

  init = good;
  init.traffic = nullptr;
  EXPECT_THROW((void)World::create(std::move(init)), InvalidArgument);

  init = good;
  init.shading = nullptr;
  EXPECT_THROW((void)World::create(std::move(init)), InvalidArgument);

  init = good;
  init.panel_power = nullptr;
  EXPECT_THROW((void)World::create(std::move(init)), InvalidArgument);

  init = good;
  init.vehicles.clear();
  EXPECT_THROW((void)World::create(std::move(init)), InvalidArgument);

  init = good;
  init.vehicles.push_back(nullptr);
  EXPECT_THROW((void)World::create(std::move(init)), InvalidArgument);
}

TEST(World, AccessorsExposeTheBundledComponents) {
  const test::SquareGraph sq;
  WorldInit init = test::RoutingEnv::make_init(sq.graph);
  const auto graph = init.graph;
  const WorldPtr world = World::create(std::move(init), 7);

  EXPECT_EQ(world->version(), 7u);
  EXPECT_EQ(&world->graph(), graph.get());
  EXPECT_EQ(&world->solar_map().graph(), graph.get());
  EXPECT_EQ(world->vehicle_count(), 2u);
  EXPECT_EQ(world->vehicle(test::RoutingEnv::kLv).name(), "Lv prototype");
  EXPECT_THROW((void)world->vehicle(2), InvalidArgument);
  EXPECT_THROW((void)world->slot_cache(2), InvalidArgument);
}

TEST(World, RecipeSharesComponentsAcrossDerivedVersions) {
  const test::SquareGraph sq;
  const WorldPtr base = World::create(test::RoutingEnv::make_init(sq.graph));

  WorldInit next = base->recipe();
  next.shading = inverted_shading(base->graph());
  const WorldPtr derived = World::create(std::move(next), 2);

  // The untouched components are the same allocations; only the
  // shading (and the solar map derived from it) differ.
  EXPECT_EQ(&derived->graph(), &base->graph());
  EXPECT_EQ(&derived->traffic(), &base->traffic());
  EXPECT_EQ(&derived->vehicle(0), &base->vehicle(0));
  EXPECT_NE(&derived->shading(), &base->shading());
}

TEST(World, SlotCacheIsOneInstancePerVehicleSharedByAllConsumers) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const WorldPtr world = World::create(grid_init(city));
  const SlotCostCache& cache = world->slot_cache(test::RoutingEnv::kLv);

  // Repeated lookups hand back the same instance, and a solver in
  // SlotQuantized mode points at exactly that instance.
  EXPECT_EQ(&world->slot_cache(test::RoutingEnv::kLv), &cache);
  MlcOptions slot_opt;
  slot_opt.pricing = PricingMode::SlotQuantized;
  const MultiLabelCorrecting solver(world, slot_opt);
  EXPECT_EQ(solver.cache(), &cache);
  // Each vehicle gets its own cache.
  EXPECT_NE(&world->slot_cache(test::RoutingEnv::kTesla), &cache);
}

TEST(World, SlotCacheColumnsFillOnceAcrossPlannerBatchAndExplainer) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const WorldPtr world = World::create(grid_init(city));
  const TimeOfDay dep = TimeOfDay::hms(10, 0);

  // 1. An 8-worker batch in SlotQuantized mode materializes whatever
  //    columns the queries touch — once, in whichever worker gets there
  //    first.
  BatchPlannerOptions batch_opt;
  batch_opt.workers = 8;
  batch_opt.mlc.pricing = PricingMode::SlotQuantized;
  batch_opt.mlc.max_time_factor = 1.5;
  const BatchPlanner batch(world, batch_opt);
  std::vector<BatchQuery> queries;
  for (int i = 0; i < 16; ++i)
    queries.push_back({city.node_at(0, i % 3), city.node_at(8, 5 + i % 4),
                       dep});
  const BatchResult result = batch.plan_all(queries);
  EXPECT_EQ(result.stats.failed, 0u);

  const SlotCostCache& cache = world->slot_cache(test::RoutingEnv::kLv);
  const std::size_t columns_after_batch = cache.filled_slots();
  EXPECT_GT(columns_after_batch, 0u);
  EXPECT_EQ(cache.bytes(), columns_after_batch * city.graph().edge_count() *
                               sizeof(SlotCostCache::Entry));

  // 2. A planner and an explainer on the same world re-read the batch's
  //    columns instead of filling their own: the fill count must not
  //    move for the same departure window.
  PlannerOptions plan_opt;
  plan_opt.mlc.pricing = PricingMode::SlotQuantized;
  const SunChasePlanner planner(world, plan_opt);
  const PlanResult plan =
      planner.plan(city.node_at(0, 0), city.node_at(8, 8), dep);
  ASSERT_FALSE(plan.candidates.empty());

  const RouteExplainer explainer(world);
  const RouteLedger ledger =
      explainer.explain(plan.candidates.front().route, dep,
                        /*time_dependent=*/true, PricingMode::SlotQuantized);
  EXPECT_FALSE(ledger.steps.empty());

  EXPECT_EQ(cache.filled_slots(), columns_after_batch);
}

TEST(WorldStore, PublishesMonotonicallyIncreasingVersions) {
  const test::SquareGraph sq;
  WorldStore store(test::RoutingEnv::make_init(sq.graph));
  EXPECT_EQ(store.version(), 1u);
  const WorldPtr v1 = store.current();

  WorldInit next = v1->recipe();
  next.shading = inverted_shading(v1->graph());
  const WorldPtr v2 = store.publish(std::move(next));
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_EQ(store.version(), 2u);
  EXPECT_EQ(store.current(), v2);
  // The old pin is alive and untouched.
  EXPECT_EQ(v1->version(), 1u);

  // Adopting an existing snapshot continues its version line.
  WorldStore adopted(v2);
  EXPECT_EQ(adopted.version(), 2u);
  EXPECT_EQ(adopted.publish(v2->recipe())->version(), 3u);
}

TEST(WorldStore, RejectsNullAdoption) {
  EXPECT_THROW(WorldStore{WorldPtr{}}, InvalidArgument);
}

// ThreadSanitizer regression: readers hammer current() while a writer
// publishes new versions. No reader may block, tear, or observe a
// version going backwards.
TEST(WorldStore, ConcurrentReadersSeeMonotonicVersionsDuringPublishes) {
  const test::SquareGraph sq;
  WorldStore store(test::RoutingEnv::make_init(sq.graph));
  std::atomic<bool> stop{false};

  std::vector<std::future<void>> readers;
  for (int t = 0; t < 4; ++t) {
    readers.push_back(std::async(std::launch::async, [&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const WorldPtr pinned = store.current();
        ASSERT_GE(pinned->version(), last);
        last = pinned->version();
        // The pinned snapshot stays coherent while newer versions land.
        ASSERT_GT(pinned->graph().edge_count(), 0u);
        ASSERT_EQ(&pinned->solar_map().graph(), &pinned->graph());
      }
    }));
  }

  for (int i = 0; i < 32; ++i)
    (void)store.publish(store.current()->recipe());
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.get();
  EXPECT_EQ(store.version(), 33u);
}

/// Flattened (travel time, energy out, energy in, path edges) of every
/// successful query, for bit-exact result comparison.
std::vector<double> fingerprint(const BatchResult& batch) {
  std::vector<double> fp;
  for (const BatchQueryResult& q : batch.queries) {
    if (!q.ok()) continue;
    for (const ParetoRoute& r : q.result->routes) {
      fp.push_back(r.cost.travel_time.value());
      fp.push_back(r.cost.shaded_time.value());
      fp.push_back(r.cost.energy_out.value());
      for (const roadnet::EdgeId e : r.path.edges)
        fp.push_back(static_cast<double>(e));
    }
  }
  return fp;
}

TEST(WorldStore, PublishMidBatchLeavesPinnedResultsBitIdentical) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  WorldStore store(grid_init(city));

  std::vector<BatchQuery> queries;
  for (int i = 0; i < 24; ++i)
    queries.push_back({city.node_at(i % 4, i % 3), city.node_at(7 + i % 3, 8),
                       TimeOfDay::hms(9 + i % 8, 0)});

  BatchPlannerOptions opt;
  opt.workers = 8;
  opt.mlc.max_time_factor = 1.4;
  const BatchPlanner pinned(store.current(), opt);

  // Baseline: the quiet run, nothing published.
  const std::vector<double> quiet = fingerprint(pinned.plan_all(queries));

  // Contended run: a writer publishes new versions (with genuinely
  // different shading) the whole time the batch is in flight.
  std::atomic<bool> stop{false};
  auto writer = std::async(std::launch::async, [&] {
    int published = 0;
    while (!stop.load(std::memory_order_relaxed) && published < 64) {
      WorldInit next = store.current()->recipe();
      next.shading = inverted_shading(store.current()->graph());
      (void)store.publish(std::move(next));
      ++published;
    }
    return published;
  });
  const std::vector<double> contended = fingerprint(pinned.plan_all(queries));
  stop.store(true, std::memory_order_relaxed);
  EXPECT_GT(writer.get(), 0);

  // The pinned planner never saw any of those versions.
  EXPECT_EQ(quiet, contended);
}

TEST(WorldStore, StoreModeBatchPicksUpThePublishedVersion) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  WorldStore store(grid_init(city));

  std::ostringstream sink;
  obs::QueryLog log(sink);
  BatchPlannerOptions opt;
  opt.workers = 2;
  opt.query_log = &log;
  const BatchPlanner live(store, opt);

  const std::vector<BatchQuery> queries = {
      {city.node_at(0, 0), city.node_at(5, 5), TimeOfDay::hms(10, 0)}};
  EXPECT_EQ(live.plan_all(queries).stats.failed, 0u);

  WorldInit next = store.current()->recipe();
  next.shading = inverted_shading(store.current()->graph());
  (void)store.publish(std::move(next));
  EXPECT_EQ(live.world()->version(), 2u);
  EXPECT_EQ(live.plan_all(queries).stats.failed, 0u);

  // The query log records which snapshot priced each query: version 1
  // before the publish, version 2 after.
  const std::string text = sink.str();
  EXPECT_NE(text.find("\"world.version\":1"), std::string::npos);
  EXPECT_NE(text.find("\"world.version\":2"), std::string::npos);
}

}  // namespace
}  // namespace sunchase::core
