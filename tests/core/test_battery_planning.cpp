// Battery-budget feasibility in route selection: the range-anxiety
// check ("if the vehicle battery totally relies on the solar power, it
// may not have enough energy to reach the destination", Sec. III-A).
#include <gtest/gtest.h>

#include "core_fixture.h"
#include "sunchase/core/planner.h"

namespace sunchase::core {
namespace {

class BatteryPlanningTest : public ::testing::Test {
 protected:
  BatteryPlanningTest()
      : city_(roadnet::GridCityOptions{}), env_(city_.graph()) {}

  roadnet::GridCity city_;
  test::RoutingEnv env_;
};

TEST_F(BatteryPlanningTest, GenerousBudgetChangesNothing) {
  PlannerOptions with;
  with.selection.battery_budget = WattHours{100000.0};
  const SunChasePlanner constrained(env_.world, with);
  const SunChasePlanner unconstrained(env_.world);
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const auto a = constrained.plan(city_.node_at(1, 1), city_.node_at(8, 8),
                                  dep);
  const auto b = unconstrained.plan(city_.node_at(1, 1), city_.node_at(8, 8),
                                    dep);
  EXPECT_EQ(a.candidates.size(), b.candidates.size());
  for (const auto& cand : a.candidates) EXPECT_TRUE(cand.battery_feasible);
}

TEST_F(BatteryPlanningTest, TinyBudgetFlagsShortestTimeInfeasible) {
  PlannerOptions opt;
  opt.selection.battery_budget = WattHours{1.0};  // ~60 Wh needed
  const SunChasePlanner planner(env_.world, opt);
  const auto plan = planner.plan(city_.node_at(1, 1), city_.node_at(8, 8),
                                 TimeOfDay::hms(10, 0));
  ASSERT_FALSE(plan.candidates.empty());
  EXPECT_FALSE(plan.candidates.front().battery_feasible);
  // All better-solar candidates were dropped as infeasible too.
  EXPECT_EQ(plan.candidates.size(), 1u);
}

TEST_F(BatteryPlanningTest, IntermediateBudgetDropsOnlyHungryCandidates) {
  // Find the unconstrained candidate set, then set the budget between
  // the cheapest and the most expensive net drain.
  const SunChasePlanner free_planner(env_.world);
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const auto free_plan =
      free_planner.plan(city_.node_at(1, 1), city_.node_at(8, 8), dep);
  if (free_plan.candidates.size() < 2)
    GTEST_SKIP() << "need at least one better-solar candidate";
  // Budget just below the hungriest better-solar candidate's drain:
  // that candidate must vanish; the shortest-time route stays (only
  // flagged when infeasible).
  double hungriest = -1e18;
  for (std::size_t i = 1; i < free_plan.candidates.size(); ++i)
    hungriest =
        std::max(hungriest, free_plan.candidates[i].net_drain().value());
  const double budget = hungriest - 1e-3;

  PlannerOptions opt;
  opt.selection.battery_budget = WattHours{budget};
  const SunChasePlanner planner(env_.world, opt);
  const auto plan = planner.plan(city_.node_at(1, 1), city_.node_at(8, 8),
                                 dep);
  EXPECT_LT(plan.candidates.size(), free_plan.candidates.size());
  for (std::size_t i = 1; i < plan.candidates.size(); ++i) {
    EXPECT_TRUE(plan.candidates[i].battery_feasible);
    EXPECT_LE(plan.candidates[i].net_drain().value(), budget + 1e-9);
  }
}

TEST_F(BatteryPlanningTest, NetDrainArithmetic) {
  CandidateRoute cand;
  cand.metrics.energy_out = WattHours{50.0};
  cand.metrics.energy_in = WattHours{12.0};
  EXPECT_DOUBLE_EQ(cand.net_drain().value(), 38.0);
}

}  // namespace
}  // namespace sunchase::core
