#include "sunchase/roadnet/directions.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "sunchase/roadnet/citygen.h"
#include "test_helpers.h"

namespace sunchase::roadnet {
namespace {

Path walk(const RoadGraph& g, std::initializer_list<NodeId> nodes) {
  Path p;
  auto it = nodes.begin();
  for (NodeId prev = *it++; it != nodes.end(); prev = *it++)
    p.edges.push_back(g.find_edge(prev, *it));
  return p;
}

TEST(Directions, EdgeBearings) {
  const test::SquareGraph sq;  // jitter-free lattice
  EXPECT_NEAR(edge_bearing_deg(sq.graph, sq.graph.find_edge(0, 1)), 90.0,
              1.0);  // east
  EXPECT_NEAR(edge_bearing_deg(sq.graph, sq.graph.find_edge(0, 2)), 0.0,
              1.0);  // north
  EXPECT_NEAR(edge_bearing_deg(sq.graph, sq.graph.find_edge(1, 0)), 270.0,
              1.0);  // west
  EXPECT_NEAR(edge_bearing_deg(sq.graph, sq.graph.find_edge(2, 0)), 180.0,
              1.0);  // south
}

TEST(Directions, ClassifyTurnBuckets) {
  EXPECT_EQ(classify_turn(0.0), Turn::Straight);
  EXPECT_EQ(classify_turn(20.0), Turn::Straight);
  EXPECT_EQ(classify_turn(45.0), Turn::SlightRight);
  EXPECT_EQ(classify_turn(-45.0), Turn::SlightLeft);
  EXPECT_EQ(classify_turn(90.0), Turn::Right);
  EXPECT_EQ(classify_turn(-90.0), Turn::Left);
  EXPECT_EQ(classify_turn(150.0), Turn::SharpRight);
  EXPECT_EQ(classify_turn(-150.0), Turn::SharpLeft);
  EXPECT_EQ(classify_turn(180.0), Turn::UTurn);
  EXPECT_EQ(classify_turn(-175.0), Turn::UTurn);
  // Wrap-around: 350 degrees clockwise = 10 left.
  EXPECT_EQ(classify_turn(350.0), Turn::Straight);
  EXPECT_EQ(classify_turn(270.0), Turn::Left);
}

TEST(Directions, SimpleLShapedRoute) {
  const test::SquareGraph sq;
  // East along 0->1, then north 1->3: depart, right-angle left turn.
  const auto steps = directions_for(sq.graph, walk(sq.graph, {0, 1, 3}));
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].turn, Turn::Depart);
  EXPECT_NEAR(steps[0].bearing_deg, 90.0, 1.0);
  EXPECT_NEAR(steps[0].distance.value(), 100.0, 1.0);
  EXPECT_EQ(steps[1].turn, Turn::Left);
  EXPECT_NEAR(steps[1].bearing_deg, 0.0, 1.0);
  EXPECT_EQ(steps[1].at_node, 1u);
  EXPECT_EQ(steps[2].turn, Turn::Arrive);
  EXPECT_EQ(steps[2].at_node, 3u);
}

TEST(Directions, StraightSegmentsMerge) {
  // Three collinear edges produce a single depart instruction.
  GraphBuilder b;
  const auto proj = test::montreal_projection();
  for (int i = 0; i < 4; ++i) b.add_node(proj.to_geo({i * 100.0, 0.0}));
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const RoadGraph g = std::move(b).build();
  Path p;
  p.edges = {0, 1, 2};
  const auto steps = directions_for(g, p);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].turn, Turn::Depart);
  EXPECT_NEAR(steps[0].distance.value(), 300.0, 1.0);
  EXPECT_EQ(steps[1].turn, Turn::Arrive);
}

TEST(Directions, EmptyPathArrivesImmediately) {
  const test::SquareGraph sq;
  const auto steps = directions_for(sq.graph, Path{});
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].turn, Turn::Arrive);
}

TEST(Directions, DisconnectedPathRejected) {
  const test::SquareGraph sq;
  Path broken;
  broken.edges = {sq.graph.find_edge(0, 1), sq.graph.find_edge(2, 3)};
  EXPECT_THROW((void)directions_for(sq.graph, broken), GraphError);
}

TEST(Directions, RenderedTextReadsNaturally) {
  const test::SquareGraph sq;
  const auto steps = directions_for(sq.graph, walk(sq.graph, {0, 1, 3}));
  const std::string first = to_string(steps[0]);
  EXPECT_NE(first.find("depart"), std::string::npos);
  EXPECT_NE(first.find("east"), std::string::npos);
  EXPECT_NE(first.find("100 m"), std::string::npos);
  EXPECT_EQ(to_string(steps.back()), "arrive at your destination");
}

TEST(Directions, CityRouteDistancesSumToPathLength) {
  const GridCity city{GridCityOptions{}};
  // Staircase route across the grid.
  Path p;
  NodeId at = city.node_at(0, 0);
  for (int i = 1; i <= 5; ++i) {
    const NodeId right = city.node_at(i - 1, i);
    const NodeId up = city.node_at(i, i);
    EdgeId e = city.graph().find_edge(at, right);
    if (e != kInvalidEdge) {
      p.edges.push_back(e);
      at = right;
    }
    e = city.graph().find_edge(at, up);
    if (e != kInvalidEdge) {
      p.edges.push_back(e);
      at = up;
    }
  }
  if (p.empty()) GTEST_SKIP() << "one-way layout blocked the staircase";
  const auto steps = directions_for(city.graph(), p);
  double sum = 0.0;
  for (const Direction& d : steps) sum += d.distance.value();
  EXPECT_NEAR(sum, path_length(p, city.graph()).value(), 1e-6);
}

}  // namespace
}  // namespace sunchase::roadnet
