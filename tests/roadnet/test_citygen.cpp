#include "sunchase/roadnet/citygen.h"

#include <gtest/gtest.h>

#include <queue>

#include "sunchase/common/error.h"

namespace sunchase::roadnet {
namespace {

/// Count of nodes reachable from `start` by BFS.
std::size_t reachable_count(const RoadGraph& g, NodeId start) {
  std::vector<bool> seen(g.node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(start);
  seen[start] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).to;
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count;
}

TEST(GridCity, NodeCountMatchesLattice) {
  GridCityOptions opt;
  opt.rows = 5;
  opt.cols = 7;
  const GridCity city(opt);
  EXPECT_EQ(city.graph().node_count(), 35u);
}

TEST(GridCity, AllTwoWayEdgeCount) {
  GridCityOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.one_way_fraction = 0.0;
  const GridCity city(opt);
  // Streets: 4 rows x 3 segments + 4 cols x 3 segments = 24 undirected
  // = 48 directed edges.
  EXPECT_EQ(city.graph().edge_count(), 48u);
}

TEST(GridCity, AllOneWayEdgeCount) {
  GridCityOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.one_way_fraction = 1.0;
  const GridCity city(opt);
  // Boundary streets stay two-way by contract: 2 interior rows + 2
  // interior cols are one-way (2*3 segments each = 12 directed edges),
  // 4 boundary streets are two-way (4*3 segments = 24 directed edges).
  EXPECT_EQ(city.graph().edge_count(), 36u);
}

TEST(GridCity, GraphValidates) {
  const GridCity city(GridCityOptions{});
  EXPECT_NO_THROW(city.graph().validate());
}

TEST(GridCity, FullyConnectedEvenWithOneWays) {
  GridCityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.one_way_fraction = 0.6;
  const GridCity city(opt);
  // Alternating one-way directions keep a downtown grid strongly
  // connected; verify from a few start nodes.
  for (const NodeId start : {city.node_at(0, 0), city.node_at(7, 7),
                             city.node_at(3, 4)})
    EXPECT_EQ(reachable_count(city.graph(), start),
              city.graph().node_count());
}

TEST(GridCity, DeterministicForSameSeed) {
  const GridCity a(GridCityOptions{});
  const GridCity b(GridCityOptions{});
  ASSERT_EQ(a.graph().node_count(), b.graph().node_count());
  ASSERT_EQ(a.graph().edge_count(), b.graph().edge_count());
  for (NodeId n = 0; n < a.graph().node_count(); ++n)
    EXPECT_EQ(a.graph().node(n).position, b.graph().node(n).position);
}

TEST(GridCity, DifferentSeedsDiffer) {
  GridCityOptions opt_b;
  opt_b.seed = 12345;
  const GridCity a(GridCityOptions{});
  const GridCity b(opt_b);
  bool any_diff = false;
  for (NodeId n = 0; n < a.graph().node_count() && !any_diff; ++n)
    any_diff = !(a.graph().node(n).position == b.graph().node(n).position);
  EXPECT_TRUE(any_diff);
}

TEST(GridCity, BlockSizesRespected) {
  GridCityOptions opt;
  opt.node_jitter_m = 0.0;
  const GridCity city(opt);
  const EdgeId east = city.graph().find_edge(city.node_at(0, 0),
                                             city.node_at(0, 1));
  if (east != kInvalidEdge) {
    EXPECT_NEAR(city.graph().edge(east).length.value(), opt.block_east_m,
                1.0);
  }
  const EdgeId north = city.graph().find_edge(city.node_at(0, 0),
                                              city.node_at(1, 0));
  if (north != kInvalidEdge) {
    EXPECT_NEAR(city.graph().edge(north).length.value(), opt.block_north_m,
                1.0);
  }
}

TEST(GridCity, BoundaryStreetsAreTwoWay) {
  GridCityOptions opt;
  opt.one_way_fraction = 1.0;
  opt.rows = 5;
  opt.cols = 5;
  const GridCity city(opt);
  EXPECT_EQ(city.row_flow(0), StreetFlow::TwoWay);
  EXPECT_EQ(city.row_flow(4), StreetFlow::TwoWay);
  EXPECT_EQ(city.col_flow(0), StreetFlow::TwoWay);
  EXPECT_EQ(city.col_flow(4), StreetFlow::TwoWay);
}

TEST(GridCity, OneWayStreetsHaveNoReverseEdge) {
  GridCityOptions opt;
  opt.one_way_fraction = 1.0;
  opt.rows = 4;
  opt.cols = 4;
  const GridCity city(opt);
  for (int r = 1; r < 3; ++r) {  // interior rows: one-way by contract
    const NodeId a = city.node_at(r, 0);
    const NodeId b = city.node_at(r, 1);
    const bool fwd = city.graph().find_edge(a, b) != kInvalidEdge;
    const bool rev = city.graph().find_edge(b, a) != kInvalidEdge;
    EXPECT_NE(fwd, rev) << "row " << r << " should be strictly one-way";
    const StreetFlow flow = city.row_flow(r);
    EXPECT_EQ(fwd, flow == StreetFlow::OneWayForward);
  }
}

TEST(GridCity, NodeAtRangeChecks) {
  const GridCity city(GridCityOptions{});
  EXPECT_THROW((void)city.node_at(-1, 0), InvalidArgument);
  EXPECT_THROW((void)city.node_at(0, 99), InvalidArgument);
  EXPECT_THROW((void)city.row_flow(99), InvalidArgument);
  EXPECT_THROW((void)city.col_flow(-1), InvalidArgument);
}

TEST(GridCity, RejectsBadOptions) {
  GridCityOptions bad;
  bad.rows = 1;
  EXPECT_THROW(GridCity{bad}, InvalidArgument);
  bad = GridCityOptions{};
  bad.block_east_m = 0.0;
  EXPECT_THROW(GridCity{bad}, InvalidArgument);
  bad = GridCityOptions{};
  bad.one_way_fraction = 1.5;
  EXPECT_THROW(GridCity{bad}, InvalidArgument);
}

// Property sweep over seeds: every generated city is valid and
// strongly connected from its corners.
class CityConnectivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CityConnectivity, StronglyConnected) {
  GridCityOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  opt.one_way_fraction = 0.5;
  opt.seed = GetParam();
  const GridCity city(opt);
  city.graph().validate();
  EXPECT_EQ(reachable_count(city.graph(), city.node_at(0, 0)),
            city.graph().node_count());
  EXPECT_EQ(reachable_count(city.graph(), city.node_at(5, 5)),
            city.graph().node_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CityConnectivity,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace sunchase::roadnet
