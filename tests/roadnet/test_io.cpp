#include "sunchase/roadnet/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sunchase/common/error.h"
#include "sunchase/roadnet/citygen.h"

namespace sunchase::roadnet {
namespace {

TEST(RoadnetIo, ParsesNodesAndEdges) {
  std::istringstream in(
      "# demo\n"
      "node 45.50 -73.57\n"
      "node 45.51 -73.57\n"
      "node 45.51 -73.56\n"
      "edge 0 1\n"
      "edge 1 2 oneway\n");
  const RoadGraph g = read_graph(in);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);  // two-way expands to 2 + 1 oneway
  EXPECT_NE(g.find_edge(0, 1), kInvalidEdge);
  EXPECT_NE(g.find_edge(1, 0), kInvalidEdge);
  EXPECT_NE(g.find_edge(1, 2), kInvalidEdge);
  EXPECT_EQ(g.find_edge(2, 1), kInvalidEdge);
}

TEST(RoadnetIo, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "\n# header\nnode 45.5 -73.5\n\n# middle\nnode 45.6 -73.5\nedge 0 1\n");
  EXPECT_EQ(read_graph(in).node_count(), 2u);
}

TEST(RoadnetIo, MalformedLineReportsLineNumber) {
  std::istringstream in("node 45.5 -73.5\nnode oops\n");
  try {
    (void)read_graph(in);
    FAIL() << "should have thrown";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(RoadnetIo, UnknownDirectiveThrows) {
  std::istringstream in("vertex 45.5 -73.5\n");
  EXPECT_THROW((void)read_graph(in), IoError);
}

TEST(RoadnetIo, EdgeBeforeNodesThrows) {
  std::istringstream in("edge 0 1\n");
  EXPECT_THROW((void)read_graph(in), IoError);
}

TEST(RoadnetIo, MissingFileThrows) {
  EXPECT_THROW((void)read_graph_file("/nonexistent/graph.txt"), IoError);
}

TEST(RoadnetIo, RoundTripPreservesStructure) {
  GridCityOptions opt;
  opt.rows = 4;
  opt.cols = 5;
  const GridCity city(opt);
  std::ostringstream out;
  write_graph(out, city.graph());
  std::istringstream in(out.str());
  const RoadGraph copy = read_graph(in);

  ASSERT_EQ(copy.node_count(), city.graph().node_count());
  ASSERT_EQ(copy.edge_count(), city.graph().edge_count());
  for (NodeId n = 0; n < copy.node_count(); ++n) {
    EXPECT_NEAR(copy.node(n).position.lat_deg,
                city.graph().node(n).position.lat_deg, 1e-8);
    EXPECT_NEAR(copy.node(n).position.lon_deg,
                city.graph().node(n).position.lon_deg, 1e-8);
  }
  for (EdgeId e = 0; e < copy.edge_count(); ++e) {
    EXPECT_EQ(copy.edge(e).from, city.graph().edge(e).from);
    EXPECT_EQ(copy.edge(e).to, city.graph().edge(e).to);
  }
}

TEST(RoadnetIo, FileRoundTrip) {
  GridCityOptions opt;
  opt.rows = 3;
  opt.cols = 3;
  const GridCity city(opt);
  const std::string path = ::testing::TempDir() + "/sunchase_graph.txt";
  write_graph_file(path, city.graph());
  const RoadGraph copy = read_graph_file(path);
  EXPECT_EQ(copy.node_count(), city.graph().node_count());
  EXPECT_EQ(copy.edge_count(), city.graph().edge_count());
  std::remove(path.c_str());
}

TEST(RoadnetIo, WriteToBadPathThrows) {
  const GridCity city(GridCityOptions{});
  EXPECT_THROW(write_graph_file("/nonexistent_dir/g.txt", city.graph()),
               IoError);
}

}  // namespace
}  // namespace sunchase::roadnet
