#include "sunchase/roadnet/path.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "test_helpers.h"

namespace sunchase::roadnet {
namespace {

Path walk(const RoadGraph& g, std::initializer_list<NodeId> nodes) {
  Path p;
  auto it = nodes.begin();
  for (NodeId prev = *it++; it != nodes.end(); prev = *it++) {
    const EdgeId e = g.find_edge(prev, *it);
    EXPECT_NE(e, kInvalidEdge);
    p.edges.push_back(e);
  }
  return p;
}

TEST(Path, ConnectivityDetection) {
  const test::SquareGraph sq;
  const Path good = walk(sq.graph, {0, 1, 3});
  EXPECT_TRUE(is_connected(good, sq.graph));

  Path broken;
  broken.edges = {sq.graph.find_edge(0, 1), sq.graph.find_edge(2, 3)};
  EXPECT_FALSE(is_connected(broken, sq.graph));
}

TEST(Path, EmptyPathIsConnected) {
  const test::SquareGraph sq;
  EXPECT_TRUE(is_connected(Path{}, sq.graph));
}

TEST(Path, LengthSumsEdges) {
  const test::SquareGraph sq;
  const Path p = walk(sq.graph, {0, 1, 3});
  EXPECT_NEAR(path_length(p, sq.graph).value(), 200.0, 0.5);
  EXPECT_DOUBLE_EQ(path_length(Path{}, sq.graph).value(), 0.0);
}

TEST(Path, NodeSequence) {
  const test::SquareGraph sq;
  const Path p = walk(sq.graph, {0, 2, 3, 1});
  const std::vector<NodeId> nodes = path_nodes(p, sq.graph);
  EXPECT_EQ(nodes, (std::vector<NodeId>{0, 2, 3, 1}));
  EXPECT_TRUE(path_nodes(Path{}, sq.graph).empty());
}

TEST(Path, OriginAndDestination) {
  const test::SquareGraph sq;
  const Path p = walk(sq.graph, {0, 1, 3});
  EXPECT_EQ(path_origin(p, sq.graph), 0u);
  EXPECT_EQ(path_destination(p, sq.graph), 3u);
  EXPECT_THROW((void)path_origin(Path{}, sq.graph), GraphError);
  EXPECT_THROW((void)path_destination(Path{}, sq.graph), GraphError);
}

TEST(Path, EdgeOverlapJaccard) {
  const test::SquareGraph sq;
  const Path a = walk(sq.graph, {0, 1, 3});
  const Path b = walk(sq.graph, {0, 1, 3});
  EXPECT_DOUBLE_EQ(edge_overlap(a, b), 1.0);
  const Path c = walk(sq.graph, {0, 2, 3});
  EXPECT_DOUBLE_EQ(edge_overlap(a, c), 0.0);
  // Shares the first edge only: |∩| = 1, |∪| = 3.
  Path d;
  d.edges = {a.edges[0]};
  EXPECT_NEAR(edge_overlap(a, d), 1.0 / 2.0, 1e-12);
}

TEST(Path, EdgeOverlapEmptyPaths) {
  EXPECT_DOUBLE_EQ(edge_overlap(Path{}, Path{}), 1.0);
}

}  // namespace
}  // namespace sunchase::roadnet
