#include "sunchase/roadnet/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <utility>
#include <vector>

#include "sunchase/common/error.h"
#include "sunchase/common/thread_pool.h"
#include "test_helpers.h"

namespace sunchase::roadnet {
namespace {

TEST(GraphBuilder, AddNodesAndEdges) {
  GraphBuilder b;
  const NodeId a = b.add_node({45.50, -73.57});
  const NodeId c = b.add_node({45.51, -73.57});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(c, 1u);
  const EdgeId e = b.add_edge(a, c);
  EXPECT_EQ(b.node_count(), 2u);
  EXPECT_EQ(b.edge_count(), 1u);
  const RoadGraph g = std::move(b).build();
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).from, a);
  EXPECT_EQ(g.edge(e).to, c);
}

TEST(GraphBuilder, EdgeLengthDefaultsToHaversine) {
  GraphBuilder b;
  const NodeId a = b.add_node({45.50, -73.57});
  const NodeId c = b.add_node({45.51, -73.57});
  const EdgeId e = b.add_edge(a, c);
  const RoadGraph g = std::move(b).build();
  const Meters expected =
      geo::haversine_distance({45.50, -73.57}, {45.51, -73.57});
  EXPECT_DOUBLE_EQ(g.edge(e).length.value(), expected.value());
}

TEST(GraphBuilder, ExplicitLengthIsRespected) {
  GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  const EdgeId e = b.add_edge(0, 1, Meters{1234.5});
  EXPECT_DOUBLE_EQ(std::move(b).build().edge(e).length.value(), 1234.5);
}

TEST(GraphBuilder, TwoWayAddsBothDirections) {
  GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  const EdgeId fwd = b.add_two_way(0, 1);
  const RoadGraph g = std::move(b).build();
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.edge(fwd).from, 0u);
  EXPECT_EQ(g.edge(fwd + 1).from, 1u);
}

TEST(GraphBuilder, RejectsBadEdges) {
  GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  EXPECT_THROW(b.add_edge(0, 5), GraphError);
  EXPECT_THROW(b.add_edge(0, 0), GraphError);
  EXPECT_THROW(b.add_edge(0, 1, Meters{0.0}), GraphError);
  EXPECT_THROW(b.add_edge(0, 1, Meters{-3.0}), GraphError);
}

TEST(GraphBuilder, RejectsInvalidCoordinates) {
  GraphBuilder b;
  EXPECT_THROW(b.add_node({95.0, 0.0}), GraphError);
}

TEST(GraphBuilder, BuildAgainAfterAppendingIsAnIndependentSnapshot) {
  GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_node({45.52, -73.57});
  b.add_edge(0, 1);
  const RoadGraph first = b.build();
  EXPECT_EQ(first.out_edges(0).size(), 1u);
  // Appending after a build must not disturb the frozen snapshot.
  b.add_edge(0, 2);
  const RoadGraph second = std::move(b).build();
  EXPECT_EQ(first.edge_count(), 1u);
  EXPECT_EQ(first.out_edges(0).size(), 1u);
  EXPECT_EQ(second.edge_count(), 2u);
  EXPECT_EQ(second.out_edges(0).size(), 2u);
}

TEST(RoadGraph, DefaultConstructedIsEmpty) {
  const RoadGraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_THROW((void)g.nearest_node({45.5, -73.6}), GraphError);
}

TEST(RoadGraph, AccessorsRangeCheck) {
  GraphBuilder b;
  b.add_node({45.5, -73.6});
  const RoadGraph g = std::move(b).build();
  EXPECT_THROW((void)g.node(1), GraphError);
  EXPECT_THROW((void)g.edge(0), GraphError);
  EXPECT_THROW((void)g.out_edges(7), GraphError);
}

TEST(RoadGraph, OutEdgesListsExactlyOutgoing) {
  test::SquareGraph sq;
  const auto edges = sq.graph.out_edges(0);
  EXPECT_EQ(edges.size(), 2u);  // to node 1 and node 2
  for (const EdgeId e : edges) EXPECT_EQ(sq.graph.edge(e).from, 0u);
}

TEST(RoadGraph, InEdgesListsExactlyIncoming) {
  test::SquareGraph sq;
  for (NodeId n = 0; n < sq.graph.node_count(); ++n) {
    std::vector<EdgeId> expected;
    for (EdgeId e = 0; e < sq.graph.edge_count(); ++e)
      if (sq.graph.edge(e).to == n) expected.push_back(e);
    const auto actual = sq.graph.in_edges(n);
    std::vector<EdgeId> got(actual.begin(), actual.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "in_edges mismatch at node " << n;
    for (const EdgeId e : actual) EXPECT_EQ(sq.graph.edge(e).to, n);
  }
}

TEST(RoadGraph, InEdgesRangeChecks) {
  GraphBuilder b;
  b.add_node({45.5, -73.6});
  const RoadGraph g = std::move(b).build();
  EXPECT_TRUE(g.in_edges(0).empty());
  EXPECT_THROW((void)g.in_edges(7), GraphError);
}

TEST(RoadGraph, FindEdge) {
  test::SquareGraph sq;
  const EdgeId e = sq.graph.find_edge(0, 1);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(sq.graph.edge(e).to, 1u);
  EXPECT_EQ(sq.graph.find_edge(0, 3), kInvalidEdge);
}

TEST(RoadGraph, NearestNode) {
  test::SquareGraph sq;
  // A point near local (95, 95) should snap to node 3 at (100, 100).
  const geo::LatLon probe = sq.proj.to_geo({95.0, 95.0});
  EXPECT_EQ(sq.graph.nearest_node(probe), 3u);
}

TEST(RoadGraph, ValidateAcceptsSquare) {
  const test::SquareGraph sq;
  EXPECT_NO_THROW(sq.graph.validate());
}

TEST(RoadGraph, ValidateRejectsDuplicateDirectedEdge) {
  GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_edge(0, 1);
  b.add_edge(0, 1);  // duplicate
  EXPECT_THROW(std::move(b).build().validate(), GraphError);
}

// Regression for the historical lazy-finalize() data race: out_edges()
// used to rebuild a mutable CSR index on first touch, so the first pair
// of simultaneous readers raced on it. The frozen graph builds the
// index at construction; hammering adjacency from a thread pool with no
// prior warm-up must be clean (the CI ThreadSanitizer job runs this).
TEST(FrozenGraph, ConcurrentOutEdgesFromColdStartIsRaceFree) {
  GraphBuilder b;
  constexpr int kNodes = 64;
  for (int i = 0; i < kNodes; ++i)
    b.add_node({45.50 + 0.0001 * i, -73.57});
  for (int i = 0; i < kNodes; ++i)
    for (int j = 1; j <= 3; ++j)
      b.add_edge(static_cast<NodeId>(i),
                 static_cast<NodeId>((i + j) % kNodes));
  const RoadGraph g = std::move(b).build();

  common::ThreadPool pool(8);
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(16);
  for (int t = 0; t < 16; ++t) {
    futures.push_back(pool.submit([&g] {
      std::size_t touched = 0;
      for (int round = 0; round < 50; ++round)
        for (NodeId n = 0; n < kNodes; ++n)
          for (const EdgeId e : g.out_edges(n)) touched += g.edge(e).to;
      return touched;
    }));
  }
  const std::size_t first = futures.front().get();
  for (std::size_t i = 1; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), first);
  }
}

}  // namespace
}  // namespace sunchase::roadnet
