#include "sunchase/roadnet/graph.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "test_helpers.h"

namespace sunchase::roadnet {
namespace {

TEST(RoadGraph, AddNodesAndEdges) {
  RoadGraph g;
  const NodeId a = g.add_node({45.50, -73.57});
  const NodeId b = g.add_node({45.51, -73.57});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  const EdgeId e = g.add_edge(a, b);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).from, a);
  EXPECT_EQ(g.edge(e).to, b);
}

TEST(RoadGraph, EdgeLengthDefaultsToHaversine) {
  RoadGraph g;
  const NodeId a = g.add_node({45.50, -73.57});
  const NodeId b = g.add_node({45.51, -73.57});
  const EdgeId e = g.add_edge(a, b);
  const Meters expected =
      geo::haversine_distance({45.50, -73.57}, {45.51, -73.57});
  EXPECT_DOUBLE_EQ(g.edge(e).length.value(), expected.value());
}

TEST(RoadGraph, ExplicitLengthIsRespected) {
  RoadGraph g;
  g.add_node({45.50, -73.57});
  g.add_node({45.51, -73.57});
  const EdgeId e = g.add_edge(0, 1, Meters{1234.5});
  EXPECT_DOUBLE_EQ(g.edge(e).length.value(), 1234.5);
}

TEST(RoadGraph, TwoWayAddsBothDirections) {
  RoadGraph g;
  g.add_node({45.50, -73.57});
  g.add_node({45.51, -73.57});
  const EdgeId fwd = g.add_two_way(0, 1);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.edge(fwd).from, 0u);
  EXPECT_EQ(g.edge(fwd + 1).from, 1u);
}

TEST(RoadGraph, RejectsBadEdges) {
  RoadGraph g;
  g.add_node({45.50, -73.57});
  g.add_node({45.51, -73.57});
  EXPECT_THROW(g.add_edge(0, 5), GraphError);
  EXPECT_THROW(g.add_edge(0, 0), GraphError);
  EXPECT_THROW(g.add_edge(0, 1, Meters{0.0}), GraphError);
  EXPECT_THROW(g.add_edge(0, 1, Meters{-3.0}), GraphError);
}

TEST(RoadGraph, RejectsInvalidCoordinates) {
  RoadGraph g;
  EXPECT_THROW(g.add_node({95.0, 0.0}), GraphError);
}

TEST(RoadGraph, AccessorsRangeCheck) {
  RoadGraph g;
  g.add_node({45.5, -73.6});
  EXPECT_THROW((void)g.node(1), GraphError);
  EXPECT_THROW((void)g.edge(0), GraphError);
  EXPECT_THROW((void)g.out_edges(7), GraphError);
}

TEST(RoadGraph, OutEdgesListsExactlyOutgoing) {
  test::SquareGraph sq;
  const auto edges = sq.graph.out_edges(0);
  EXPECT_EQ(edges.size(), 2u);  // to node 1 and node 2
  for (const EdgeId e : edges) EXPECT_EQ(sq.graph.edge(e).from, 0u);
}

TEST(RoadGraph, OutEdgesAfterMutationRebuildsIndex) {
  test::SquareGraph sq;
  EXPECT_EQ(sq.graph.out_edges(0).size(), 2u);
  // Diagonal 0 -> 3 added after the index was built.
  sq.graph.add_edge(0, 3);
  EXPECT_EQ(sq.graph.out_edges(0).size(), 3u);
}

TEST(RoadGraph, FindEdge) {
  test::SquareGraph sq;
  const EdgeId e = sq.graph.find_edge(0, 1);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(sq.graph.edge(e).to, 1u);
  EXPECT_EQ(sq.graph.find_edge(0, 3), kInvalidEdge);
}

TEST(RoadGraph, NearestNode) {
  test::SquareGraph sq;
  // A point near local (95, 95) should snap to node 3 at (100, 100).
  const geo::LatLon probe = sq.proj.to_geo({95.0, 95.0});
  EXPECT_EQ(sq.graph.nearest_node(probe), 3u);
  RoadGraph empty;
  EXPECT_THROW((void)empty.nearest_node({45.5, -73.6}), GraphError);
}

TEST(RoadGraph, ValidateAcceptsSquare) {
  const test::SquareGraph sq;
  EXPECT_NO_THROW(sq.graph.validate());
}

TEST(RoadGraph, ValidateRejectsDuplicateDirectedEdge) {
  RoadGraph g;
  g.add_node({45.50, -73.57});
  g.add_node({45.51, -73.57});
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // duplicate
  EXPECT_THROW(g.validate(), GraphError);
}

}  // namespace
}  // namespace sunchase::roadnet
