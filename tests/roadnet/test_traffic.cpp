#include "sunchase/roadnet/traffic.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "test_helpers.h"

namespace sunchase::roadnet {
namespace {

TEST(UniformTraffic, ConstantEverywhere) {
  const test::SquareGraph sq;
  const UniformTraffic traffic(kmh(15.0));
  for (EdgeId e = 0; e < sq.graph.edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(
        traffic.speed(sq.graph, e, TimeOfDay::hms(8, 0)).value(),
        kmh(15.0).value());
    EXPECT_DOUBLE_EQ(
        traffic.speed(sq.graph, e, TimeOfDay::hms(17, 0)).value(),
        kmh(15.0).value());
  }
}

TEST(UniformTraffic, RejectsNonPositiveSpeed) {
  EXPECT_THROW(UniformTraffic(MetersPerSecond{0.0}), InvalidArgument);
  EXPECT_THROW(UniformTraffic(MetersPerSecond{-1.0}), InvalidArgument);
}

TEST(TravelTime, LengthOverSpeed) {
  const test::SquareGraph sq;
  const UniformTraffic traffic(MetersPerSecond{10.0});
  const EdgeId e = sq.graph.find_edge(0, 1);  // ~100 m
  EXPECT_NEAR(traffic.travel_time(sq.graph, e, TimeOfDay::hms(10, 0)).value(),
              10.0, 0.1);
}

TEST(UrbanTraffic, SpeedsStayInConfiguredBand) {
  const test::SquareGraph sq;
  const UrbanTraffic traffic(UrbanTraffic::Options{});
  for (EdgeId e = 0; e < sq.graph.edge_count(); ++e) {
    // Across the day the defaults span the paper's ~14-17 km/h band.
    for (const int hour : {8, 12, 17}) {
      const double v =
          to_kmh(traffic.speed(sq.graph, e, TimeOfDay::hms(hour, 0)));
      EXPECT_GE(v, 16.2 * 0.85 - 1e-9);  // congestion floor ~13.8
      EXPECT_LE(v, 17.0 + 1e-9);
    }
  }
}

TEST(UrbanTraffic, DeterministicPerEdge) {
  const test::SquareGraph sq;
  const UrbanTraffic a(UrbanTraffic::Options{});
  const UrbanTraffic b(UrbanTraffic::Options{});
  for (EdgeId e = 0; e < sq.graph.edge_count(); ++e)
    EXPECT_DOUBLE_EQ(a.speed(sq.graph, e, TimeOfDay::hms(10, 0)).value(),
                     b.speed(sq.graph, e, TimeOfDay::hms(10, 0)).value());
}

TEST(UrbanTraffic, DifferentSeedsGiveDifferentSpeeds) {
  const test::SquareGraph sq;
  UrbanTraffic::Options opt_a;
  UrbanTraffic::Options opt_b;
  opt_b.seed = opt_a.seed + 1;
  const UrbanTraffic a(opt_a);
  const UrbanTraffic b(opt_b);
  int different = 0;
  for (EdgeId e = 0; e < sq.graph.edge_count(); ++e)
    if (a.speed(sq.graph, e, TimeOfDay::hms(10, 0)).value() !=
        b.speed(sq.graph, e, TimeOfDay::hms(10, 0)).value())
      ++different;
  EXPECT_GT(different, 0);
}

TEST(UrbanTraffic, RushHourSlowerThanMidday) {
  const test::SquareGraph sq;
  const UrbanTraffic traffic(UrbanTraffic::Options{});
  const EdgeId e = sq.graph.find_edge(0, 1);
  const double rush =
      traffic.speed(sq.graph, e, TimeOfDay::hms(8, 30)).value();
  const double midday =
      traffic.speed(sq.graph, e, TimeOfDay::hms(12, 30)).value();
  EXPECT_LT(rush, midday);
}

TEST(UrbanTraffic, CongestionFactorBounds) {
  const UrbanTraffic traffic(UrbanTraffic::Options{});
  for (int h = 0; h < 24; ++h) {
    const double f = traffic.congestion_factor(TimeOfDay::hms(h, 0));
    EXPECT_GE(f, 0.85 - 1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
  }
  // Peak dips hit near the configured floor.
  EXPECT_LT(traffic.congestion_factor(TimeOfDay::hms(8, 30)), 0.87);
}

TEST(UrbanTraffic, RejectsBadOptions) {
  UrbanTraffic::Options bad;
  bad.min_speed = MetersPerSecond{0.0};
  EXPECT_THROW(UrbanTraffic{bad}, InvalidArgument);
  bad = UrbanTraffic::Options{};
  bad.max_speed = kmh(10.0);  // below min
  EXPECT_THROW(UrbanTraffic{bad}, InvalidArgument);
  bad = UrbanTraffic::Options{};
  bad.rush_hour_slowdown = 0.0;
  EXPECT_THROW(UrbanTraffic{bad}, InvalidArgument);
}

TEST(MaxSpeed, UpperBoundsSpeedAtEverySampledTime) {
  // max_speed() feeds the reverse-Dijkstra lower bounds used to prune
  // the Pareto search: it must dominate speed() at every clock time or
  // the bounds stop being admissible.
  const test::SquareGraph sq;
  const UrbanTraffic urban(UrbanTraffic::Options{});
  const UniformTraffic uniform(kmh(15.0));
  for (EdgeId e = 0; e < sq.graph.edge_count(); ++e) {
    const double urban_cap = urban.max_speed(sq.graph, e).value();
    const double uniform_cap = uniform.max_speed(sq.graph, e).value();
    for (int minute = 0; minute < 24 * 60; minute += 7) {
      const TimeOfDay when = TimeOfDay::hms(minute / 60, minute % 60);
      EXPECT_GE(urban_cap, urban.speed(sq.graph, e, when).value() - 1e-12);
      EXPECT_DOUBLE_EQ(uniform_cap,
                       uniform.speed(sq.graph, e, when).value());
    }
  }
}

TEST(MaxSpeed, UrbanCapIsAttainedAtFreeFlow) {
  // Around midnight the congestion factor is ~1, so the cap should be
  // tight (not a loose over-estimate that would weaken pruning).
  const test::SquareGraph sq;
  const UrbanTraffic traffic(UrbanTraffic::Options{});
  const EdgeId e = sq.graph.find_edge(0, 1);
  EXPECT_NEAR(traffic.max_speed(sq.graph, e).value(),
              traffic.speed(sq.graph, e, TimeOfDay::hms(0, 0)).value(),
              traffic.max_speed(sq.graph, e).value() * 1e-6);
}

TEST(MaxSpeed, MinTravelTimeIsLengthOverCap) {
  const test::SquareGraph sq;
  const UniformTraffic traffic(MetersPerSecond{10.0});
  const EdgeId e = sq.graph.find_edge(0, 1);  // ~100 m
  EXPECT_NEAR(traffic.min_travel_time(sq.graph, e).value(), 10.0, 0.1);
  EXPECT_DOUBLE_EQ(
      traffic.min_travel_time(sq.graph, e).value(),
      sq.graph.edge(e).length.value() /
          traffic.max_speed(sq.graph, e).value());
}

TEST(UrbanTraffic, UnknownEdgeThrows) {
  const test::SquareGraph sq;
  const UrbanTraffic traffic(UrbanTraffic::Options{});
  EXPECT_THROW((void)traffic.speed(sq.graph, 999, TimeOfDay::hms(10, 0)),
               GraphError);
}

}  // namespace
}  // namespace sunchase::roadnet
