#include "sunchase/shadow/caster.h"

#include <gtest/gtest.h>

#include <numbers>

#include "test_helpers.h"

namespace sunchase::shadow {
namespace {

constexpr double kPi = std::numbers::pi;

Building square_tower(double height = 20.0) {
  return Building{geo::rectangle({0, 0}, {10, 10}), height};
}

TEST(BuildingShadow, SunDownNoShadow) {
  const geo::SunPosition night{-0.2, 0.0};
  EXPECT_TRUE(building_shadow(square_tower(), night).empty());
}

TEST(BuildingShadow, FortyFiveDegreeSouthSunShadowExtendsNorth) {
  const geo::Polygon shadow =
      building_shadow(square_tower(20.0), test::south_sun_45());
  ASSERT_GE(shadow.size(), 4u);
  const auto [lo, hi] = geo::bounding_box(shadow);
  // Footprint [0,10]x[0,10] plus a 20 m northward offset.
  EXPECT_NEAR(lo.y, 0.0, 1e-6);
  EXPECT_NEAR(hi.y, 30.0, 1e-6);
  EXPECT_NEAR(lo.x, 0.0, 1e-6);
  EXPECT_NEAR(hi.x, 10.0, 1e-6);
}

TEST(BuildingShadow, ShadowAreaGrowsAsSunDrops) {
  const geo::SunPosition high{1.2, kPi};
  const geo::SunPosition low{0.4, kPi};
  EXPECT_GT(geo::area(building_shadow(square_tower(), low)),
            geo::area(building_shadow(square_tower(), high)));
}

TEST(BuildingShadow, ContainsFootprintAndIsConvex) {
  const geo::Polygon shadow =
      building_shadow(square_tower(), test::south_sun_45());
  EXPECT_TRUE(geo::is_convex(shadow));
  EXPECT_TRUE(geo::contains(shadow, {5, 5}));    // footprint center
  EXPECT_TRUE(geo::contains(shadow, {5, 25}));   // projected roof area
  EXPECT_FALSE(geo::contains(shadow, {5, -5}));  // south of the building
}

TEST(BuildingShadow, MorningShadowWestAfternoonShadowEast) {
  // Eastern sun (azimuth 90 deg) -> shadow to the west (negative x).
  const geo::SunPosition morning{0.5, kPi / 2.0};
  const auto [mlo, mhi] = geo::bounding_box(building_shadow(
      square_tower(), morning));
  EXPECT_LT(mlo.x, -1.0);
  // Western sun -> shadow east.
  const geo::SunPosition afternoon{0.5, 3.0 * kPi / 2.0};
  const auto [alo, ahi] = geo::bounding_box(building_shadow(
      square_tower(), afternoon));
  EXPECT_GT(ahi.x, 11.0);
}

TEST(TreeShadow, DisplacedDiscNotRootedAtTrunk) {
  // Tree at origin, 10 m tall, 2 m canopy; 45-degree south sun puts the
  // canopy shadow ~8-10 m north, detached from the trunk.
  const Tree tree{{0, 0}, 2.0, 10.0};
  const geo::Polygon shadow = tree_shadow(tree, test::south_sun_45());
  ASSERT_FALSE(shadow.empty());
  EXPECT_FALSE(geo::contains(shadow, {0.0, 0.0}));
  EXPECT_TRUE(geo::contains(shadow, {0.0, 9.0}));
}

TEST(TreeShadow, SunDownNoShadow) {
  EXPECT_TRUE(tree_shadow(Tree{{0, 0}, 2.0, 8.0},
                          geo::SunPosition{-0.1, 0.0})
                  .empty());
}

TEST(TreeShadow, AreaComparableToCanopy) {
  const Tree tree{{0, 0}, 3.0, 9.0};
  const geo::Polygon shadow = tree_shadow(tree, test::south_sun_45());
  const double canopy_area = geo::area(geo::regular_polygon({0, 0}, 3.0, 8));
  // Shadow includes the canopy smear: at least the canopy's own area,
  // but bounded (not a building-style volume from the ground).
  EXPECT_GE(geo::area(shadow), canopy_area * 0.9);
  EXPECT_LE(geo::area(shadow), canopy_area * 4.0);
}

TEST(CastShadows, CountsAndBoundingBoxes) {
  Scene scene(test::montreal_projection(), 5.0);
  scene.add_building(square_tower());
  scene.add_building(Building{geo::rectangle({50, 0}, {60, 10}), 30.0});
  scene.add_tree(Tree{{100, 0}, 2.5, 9.0});
  const auto shadows = cast_shadows(scene, test::south_sun_45());
  ASSERT_EQ(shadows.size(), 3u);
  for (const ShadowPolygon& s : shadows) {
    const auto [lo, hi] = geo::bounding_box(s.outline);
    EXPECT_EQ(lo, s.bbox_min);
    EXPECT_EQ(hi, s.bbox_max);
  }
}

TEST(CastShadows, EmptyWhenSunDown) {
  Scene scene(test::montreal_projection(), 5.0);
  scene.add_building(square_tower());
  EXPECT_TRUE(cast_shadows(scene, geo::SunPosition{-0.3, 0.0}).empty());
}

// Property: at any daytime hour, every building shadow contains the
// building footprint's centroid and has at least the footprint's area.
class ShadowDayParam : public ::testing::TestWithParam<int> {};

TEST_P(ShadowDayParam, ShadowCoversFootprint) {
  const int hour = GetParam();
  const auto sun = geo::sun_position({45.4995, -73.5700}, geo::DayOfYear{196},
                                     TimeOfDay::hms(hour, 0));
  if (!sun.is_up()) GTEST_SKIP() << "sun below horizon";
  const Building b = square_tower(25.0);
  const geo::Polygon shadow = building_shadow(b, sun);
  EXPECT_TRUE(geo::contains(shadow, {5, 5}));
  EXPECT_GE(geo::area(shadow), geo::area(b.footprint) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Hours, ShadowDayParam,
                         ::testing::Values(7, 9, 11, 13, 15, 17, 19));

}  // namespace
}  // namespace sunchase::shadow
