#include "sunchase/shadow/scene.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "test_helpers.h"

namespace sunchase::shadow {
namespace {

Scene empty_scene() { return Scene(test::montreal_projection(), 5.0); }

TEST(Scene, RejectsBadRoadWidth) {
  EXPECT_THROW(Scene(test::montreal_projection(), 0.0), InvalidArgument);
  EXPECT_THROW(Scene(test::montreal_projection(), -2.0), InvalidArgument);
}

TEST(Scene, AddBuildingNormalizesToCcw) {
  Scene scene = empty_scene();
  geo::Polygon cw = geo::rectangle({0, 0}, {10, 10});
  std::reverse(cw.vertices.begin(), cw.vertices.end());
  scene.add_building(Building{cw, 20.0});
  ASSERT_EQ(scene.buildings().size(), 1u);
  EXPECT_GT(geo::signed_area(scene.buildings()[0].footprint), 0.0);
}

TEST(Scene, AddBuildingValidation) {
  Scene scene = empty_scene();
  EXPECT_THROW(
      scene.add_building(Building{geo::Polygon{{{0, 0}, {1, 1}}}, 10.0}),
      InvalidArgument);
  EXPECT_THROW(
      scene.add_building(Building{geo::rectangle({0, 0}, {5, 5}), 0.0}),
      InvalidArgument);
  // Non-convex (L-shaped) footprint rejected.
  const geo::Polygon ell{{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}}};
  EXPECT_THROW(scene.add_building(Building{ell, 10.0}), InvalidArgument);
}

TEST(Scene, AddTreeValidation) {
  Scene scene = empty_scene();
  EXPECT_THROW(scene.add_tree(Tree{{0, 0}, 0.0, 10.0}), InvalidArgument);
  EXPECT_THROW(scene.add_tree(Tree{{0, 0}, 2.0, -1.0}), InvalidArgument);
  scene.add_tree(Tree{{5, 5}, 2.0, 8.0});
  EXPECT_EQ(scene.trees().size(), 1u);
}

TEST(Scene, EdgeSegmentMatchesProjectedNodes) {
  const test::SquareGraph sq;
  const Scene scene(sq.proj, 5.0);
  const roadnet::EdgeId e = sq.graph.find_edge(0, 1);
  const geo::Segment seg = scene.edge_segment(sq.graph, e);
  EXPECT_NEAR(seg.a.x, 0.0, 1e-6);
  EXPECT_NEAR(seg.a.y, 0.0, 1e-6);
  EXPECT_NEAR(seg.b.x, 100.0, 1e-6);
  EXPECT_NEAR(seg.b.y, 0.0, 1e-6);
}

TEST(Scene, BoundsCoverAllObstructions) {
  Scene scene = empty_scene();
  scene.add_building(Building{geo::rectangle({10, 10}, {30, 40}), 15.0});
  scene.add_tree(Tree{{-20, 5}, 3.0, 8.0});
  const auto [lo, hi] = scene.bounds();
  EXPECT_DOUBLE_EQ(lo.x, -23.0);  // tree center - radius
  EXPECT_DOUBLE_EQ(hi.x, 30.0);
  EXPECT_DOUBLE_EQ(lo.y, 2.0);
  EXPECT_DOUBLE_EQ(hi.y, 40.0);
}

TEST(Scene, BoundsThrowOnEmptyScene) {
  const Scene scene = empty_scene();
  EXPECT_THROW((void)scene.bounds(), InvalidArgument);
}

}  // namespace
}  // namespace sunchase::shadow
