#include "sunchase/shadow/scenegen.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "sunchase/roadnet/citygen.h"
#include "test_helpers.h"

namespace sunchase::shadow {
namespace {

SceneGenOptions default_options() { return SceneGenOptions{}; }

TEST(SceneGen, ProducesBuildingsAndTrees) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const geo::LocalProjection proj(city.options().origin);
  const Scene scene = generate_scene(city.graph(), proj, default_options());
  EXPECT_GT(scene.buildings().size(), 50u);
  EXPECT_GT(scene.trees().size(), 20u);
}

TEST(SceneGen, DeterministicForSameSeed) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const geo::LocalProjection proj(city.options().origin);
  const Scene a = generate_scene(city.graph(), proj, default_options());
  const Scene b = generate_scene(city.graph(), proj, default_options());
  ASSERT_EQ(a.buildings().size(), b.buildings().size());
  for (std::size_t i = 0; i < a.buildings().size(); ++i) {
    EXPECT_EQ(a.buildings()[i].height_m, b.buildings()[i].height_m);
    EXPECT_EQ(a.buildings()[i].footprint.vertices,
              b.buildings()[i].footprint.vertices);
  }
}

TEST(SceneGen, DifferentSeedsDiffer) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const geo::LocalProjection proj(city.options().origin);
  SceneGenOptions other = default_options();
  other.seed += 1;
  const Scene a = generate_scene(city.graph(), proj, default_options());
  const Scene b = generate_scene(city.graph(), proj, other);
  // Allow identical counts but require differing contents.
  bool differs = a.buildings().size() != b.buildings().size();
  for (std::size_t i = 0;
       !differs && i < std::min(a.buildings().size(), b.buildings().size());
       ++i)
    differs = a.buildings()[i].height_m != b.buildings()[i].height_m;
  EXPECT_TRUE(differs);
}

TEST(SceneGen, BuildingsKeepClearOfRoadSurface) {
  const test::SquareGraph sq;
  SceneGenOptions opt = default_options();
  opt.building_probability = 1.0;
  const Scene scene = generate_scene(sq.graph, sq.proj, opt);
  ASSERT_FALSE(scene.buildings().empty());
  // No footprint vertex may be inside a road corridor.
  for (const Building& b : scene.buildings()) {
    for (roadnet::EdgeId e = 0; e < sq.graph.edge_count(); ++e) {
      const geo::Segment road = scene.edge_segment(sq.graph, e);
      for (const geo::Vec2& v : b.footprint.vertices)
        EXPECT_GT(geo::distance_to_segment(v, road),
                  opt.road_half_width_m - 1e-9);
    }
  }
}

TEST(SceneGen, HeightsWithinConfiguredMixture) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const geo::LocalProjection proj(city.options().origin);
  const SceneGenOptions opt = default_options();
  const Scene scene = generate_scene(city.graph(), proj, opt);
  int towers = 0;
  for (const Building& b : scene.buildings()) {
    const bool lowrise =
        b.height_m >= opt.lowrise_min_m && b.height_m <= opt.lowrise_max_m;
    const bool tower =
        b.height_m >= opt.tower_min_m && b.height_m <= opt.tower_max_m;
    EXPECT_TRUE(lowrise || tower) << "height " << b.height_m;
    if (tower) ++towers;
  }
  // Tower fraction should be near the configured probability.
  const double frac =
      static_cast<double>(towers) / static_cast<double>(scene.buildings().size());
  EXPECT_NEAR(frac, opt.tower_probability, 0.1);
}

TEST(SceneGen, TwoWayStreetsGetOneSetOfBuildings) {
  // A single two-way street: both directed edges describe the same
  // physical road; lots must not be duplicated.
  roadnet::GraphBuilder b;
  const auto proj = test::montreal_projection();
  b.add_node(proj.to_geo({0, 0}));
  b.add_node(proj.to_geo({300, 0}));
  b.add_two_way(0, 1);
  const roadnet::RoadGraph g = std::move(b).build();
  SceneGenOptions opt = default_options();
  opt.building_probability = 1.0;
  opt.tree_probability = 0.0;
  const Scene scene = generate_scene(g, proj, opt);

  roadnet::GraphBuilder one_way_builder;
  one_way_builder.add_node(proj.to_geo({0, 0}));
  one_way_builder.add_node(proj.to_geo({300, 0}));
  one_way_builder.add_edge(0, 1);
  const roadnet::RoadGraph one_way = std::move(one_way_builder).build();
  const Scene reference = generate_scene(one_way, proj, opt);
  EXPECT_EQ(scene.buildings().size(), reference.buildings().size());
}

TEST(SceneGen, RejectsBadSpacing) {
  const test::SquareGraph sq;
  SceneGenOptions bad = default_options();
  bad.lot_length_m = 0.0;
  EXPECT_THROW((void)generate_scene(sq.graph, sq.proj, bad), sunchase::InvalidArgument);
}

}  // namespace
}  // namespace sunchase::shadow
