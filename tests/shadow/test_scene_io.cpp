#include "sunchase/shadow/scene_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sunchase/common/error.h"
#include "sunchase/shadow/scenegen.h"
#include "test_helpers.h"

namespace sunchase::shadow {
namespace {

TEST(SceneIo, ParsesMinimalScene) {
  std::istringstream in(
      "# demo\n"
      "roadhalfwidth 4.5\n"
      "origin 45.4995 -73.57\n"
      "building 20 4 0 0 10 0 10 10 0 10\n"
      "tree 30 5 2.5 8\n");
  const Scene scene = read_scene(in);
  EXPECT_DOUBLE_EQ(scene.road_half_width(), 4.5);
  ASSERT_EQ(scene.buildings().size(), 1u);
  EXPECT_DOUBLE_EQ(scene.buildings()[0].height_m, 20.0);
  EXPECT_EQ(scene.buildings()[0].footprint.size(), 4u);
  ASSERT_EQ(scene.trees().size(), 1u);
  EXPECT_DOUBLE_EQ(scene.trees()[0].radius_m, 2.5);
  EXPECT_NEAR(scene.projection().origin().lat_deg, 45.4995, 1e-9);
}

TEST(SceneIo, OriginOnlySceneIsEmptyButValid) {
  std::istringstream in("origin 45.5 -73.6\n");
  const Scene scene = read_scene(in);
  EXPECT_TRUE(scene.buildings().empty());
  EXPECT_TRUE(scene.trees().empty());
}

TEST(SceneIo, MissingOriginThrows) {
  std::istringstream in("building 20 4 0 0 10 0 10 10 0 10\n");
  EXPECT_THROW((void)read_scene(in), IoError);
  std::istringstream empty("# nothing\n");
  EXPECT_THROW((void)read_scene(empty), IoError);
}

TEST(SceneIo, MalformedLinesReportLineNumber) {
  std::istringstream in("origin 45.5 -73.6\ntree not numbers\n");
  try {
    (void)read_scene(in);
    FAIL() << "should have thrown";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SceneIo, RejectsInvalidGeometry) {
  std::istringstream bad_building(
      "origin 45.5 -73.6\nbuilding 0 4 0 0 10 0 10 10 0 10\n");
  EXPECT_THROW((void)read_scene(bad_building), IoError);
  std::istringstream too_few(
      "origin 45.5 -73.6\nbuilding 10 2 0 0 10 0\n");
  EXPECT_THROW((void)read_scene(too_few), IoError);
  std::istringstream bad_tree("origin 45.5 -73.6\ntree 0 0 0 8\n");
  EXPECT_THROW((void)read_scene(bad_tree), IoError);
  std::istringstream unknown("origin 45.5 -73.6\nlamp 0 0\n");
  EXPECT_THROW((void)read_scene(unknown), IoError);
  std::istringstream dup_origin("origin 45.5 -73.6\norigin 45.5 -73.6\n");
  EXPECT_THROW((void)read_scene(dup_origin), IoError);
}

TEST(SceneIo, GeneratedSceneRoundTrips) {
  const test::SquareGraph sq;
  const Scene original =
      generate_scene(sq.graph, sq.proj, SceneGenOptions{});
  std::ostringstream out;
  write_scene(out, original);
  std::istringstream in(out.str());
  const Scene copy = read_scene(in);

  ASSERT_EQ(copy.buildings().size(), original.buildings().size());
  ASSERT_EQ(copy.trees().size(), original.trees().size());
  EXPECT_DOUBLE_EQ(copy.road_half_width(), original.road_half_width());
  for (std::size_t i = 0; i < original.buildings().size(); ++i) {
    EXPECT_NEAR(copy.buildings()[i].height_m,
                original.buildings()[i].height_m, 1e-6);
    ASSERT_EQ(copy.buildings()[i].footprint.size(),
              original.buildings()[i].footprint.size());
    for (std::size_t v = 0; v < original.buildings()[i].footprint.size();
         ++v) {
      EXPECT_NEAR(copy.buildings()[i].footprint.vertices[v].x,
                  original.buildings()[i].footprint.vertices[v].x, 1e-6);
    }
  }
}

TEST(SceneIo, FileRoundTrip) {
  const test::SquareGraph sq;
  SceneGenOptions opt;
  opt.tree_probability = 0.8;
  const Scene original = generate_scene(sq.graph, sq.proj, opt);
  const std::string path = ::testing::TempDir() + "/sunchase_scene.txt";
  write_scene_file(path, original);
  const Scene copy = read_scene_file(path);
  EXPECT_EQ(copy.buildings().size(), original.buildings().size());
  EXPECT_EQ(copy.trees().size(), original.trees().size());
  std::remove(path.c_str());
}

TEST(SceneIo, MissingFileThrows) {
  EXPECT_THROW((void)read_scene_file("/nonexistent/scene.txt"), IoError);
  const test::SquareGraph sq;
  const Scene scene(sq.proj, 5.0);
  EXPECT_THROW(write_scene_file("/nonexistent_dir/s.txt", scene), IoError);
}

}  // namespace
}  // namespace sunchase::shadow
