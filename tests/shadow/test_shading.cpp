#include "sunchase/shadow/shading.h"

#include <gtest/gtest.h>

#include "sunchase/common/assert.h"
#include "sunchase/common/error.h"
#include "test_helpers.h"

namespace sunchase::shadow {
namespace {

std::vector<ShadowPolygon> boxes(std::initializer_list<geo::Polygon> polys) {
  std::vector<ShadowPolygon> out;
  for (const geo::Polygon& p : polys) {
    const auto [lo, hi] = geo::bounding_box(p);
    out.push_back({p, lo, hi});
  }
  return out;
}

TEST(ShadedFraction, NoShadowsIsZero) {
  const geo::Segment seg{{0, 0}, {100, 0}};
  EXPECT_DOUBLE_EQ(shaded_fraction(seg, {}), 0.0);
}

TEST(ShadedFraction, FullCoverIsOne) {
  const geo::Segment seg{{10, 0}, {20, 0}};
  const auto shadows = boxes({geo::rectangle({0, -5}, {100, 5})});
  EXPECT_NEAR(shaded_fraction(seg, shadows), 1.0, 1e-9);
}

TEST(ShadedFraction, PartialCover) {
  const geo::Segment seg{{0, 0}, {100, 0}};
  const auto shadows = boxes({geo::rectangle({25, -5}, {50, 5})});
  EXPECT_NEAR(shaded_fraction(seg, shadows), 0.25, 1e-9);
}

TEST(ShadedFraction, OverlappingShadowsNotDoubleCounted) {
  const geo::Segment seg{{0, 0}, {100, 0}};
  const auto shadows = boxes({geo::rectangle({20, -5}, {60, 5}),
                              geo::rectangle({40, -5}, {80, 5})});
  EXPECT_NEAR(shaded_fraction(seg, shadows), 0.6, 1e-9);  // 20..80
}

TEST(ShadedFraction, DisjointShadowsSum) {
  const geo::Segment seg{{0, 0}, {100, 0}};
  const auto shadows = boxes({geo::rectangle({0, -5}, {10, 5}),
                              geo::rectangle({90, -5}, {100, 5})});
  EXPECT_NEAR(shaded_fraction(seg, shadows), 0.2, 1e-9);
}

TEST(ShadedFraction, ShadowBesideRoadIgnored) {
  const geo::Segment seg{{0, 0}, {100, 0}};
  const auto shadows = boxes({geo::rectangle({0, 10}, {100, 20})});
  EXPECT_DOUBLE_EQ(shaded_fraction(seg, shadows), 0.0);
}

TEST(ShadedFraction, DegenerateSegmentIsZero) {
  const geo::Segment seg{{5, 5}, {5, 5}};
  const auto shadows = boxes({geo::rectangle({0, 0}, {10, 10})});
  EXPECT_DOUBLE_EQ(shaded_fraction(seg, shadows), 0.0);
}

class ShadingProfileTest : public ::testing::Test {
 protected:
  ShadingProfileTest() : scene_(sq_.proj, 5.0) {
    // One 30 m tower just south of the 0->1 street (y=0): its noon
    // shadow falls across that street.
    scene_.add_building(
        Building{geo::rectangle({30, -40}, {60, -10}), 35.0});
  }
  test::SquareGraph sq_;
  Scene scene_;
};

TEST_F(ShadingProfileTest, ExactProfileShadesSouthStreetAtNoon) {
  const auto profile = ShadingProfile::compute_exact(
      sq_.graph, scene_, geo::DayOfYear{196}, TimeOfDay::hms(13, 0),
      TimeOfDay::hms(13, 0));
  const roadnet::EdgeId south = sq_.graph.find_edge(0, 1);
  const roadnet::EdgeId north = sq_.graph.find_edge(2, 3);
  EXPECT_GT(profile.shaded_fraction(south, TimeOfDay::hms(13, 0)), 0.15);
  // The north street at y=100 is far beyond a 35 m noon shadow.
  EXPECT_DOUBLE_EQ(profile.shaded_fraction(north, TimeOfDay::hms(13, 0)),
                   0.0);
}

TEST_F(ShadingProfileTest, SolarLengthComplementsShadedFraction) {
  const auto profile = ShadingProfile::compute_exact(
      sq_.graph, scene_, geo::DayOfYear{196}, TimeOfDay::hms(10, 0),
      TimeOfDay::hms(16, 0));
  const roadnet::EdgeId e = sq_.graph.find_edge(0, 1);
  const TimeOfDay when = TimeOfDay::hms(12, 0);
  const double frac = profile.shaded_fraction(e, when);
  const Meters len = sq_.graph.edge(e).length;
  EXPECT_NEAR(profile.solar_length(sq_.graph, e, when).value(),
              len.value() * (1.0 - frac), 1e-9);
}

TEST_F(ShadingProfileTest, ClampsOutsideSampledWindow) {
  const auto profile = ShadingProfile::compute_exact(
      sq_.graph, scene_, geo::DayOfYear{196}, TimeOfDay::hms(10, 0),
      TimeOfDay::hms(16, 0));
  const roadnet::EdgeId e = sq_.graph.find_edge(0, 1);
  EXPECT_DOUBLE_EQ(profile.shaded_fraction(e, TimeOfDay::hms(5, 0)),
                   profile.shaded_fraction(e, TimeOfDay::hms(10, 0)));
  EXPECT_DOUBLE_EQ(profile.shaded_fraction(e, TimeOfDay::hms(22, 0)),
                   profile.shaded_fraction(e, TimeOfDay::hms(16, 0)));
}

TEST_F(ShadingProfileTest, EmptyWindowThrows) {
  EXPECT_THROW((void)ShadingProfile::compute_exact(
                   sq_.graph, scene_, geo::DayOfYear{196},
                   TimeOfDay::hms(16, 0), TimeOfDay::hms(10, 0)),
               InvalidArgument);
}

TEST_F(ShadingProfileTest, EstimatorOutOfRangeIsRejected) {
  const ShadedFractionFn bad = [](roadnet::EdgeId, TimeOfDay) {
    return 1.5;
  };
  EXPECT_THROW((void)ShadingProfile::compute(sq_.graph, bad,
                                             TimeOfDay::hms(10, 0),
                                             TimeOfDay::hms(10, 0)),
               ContractViolation);
}

TEST_F(ShadingProfileTest, MeanAbsoluteDifference) {
  const auto zeros = ShadingProfile::compute(
      sq_.graph, [](roadnet::EdgeId, TimeOfDay) { return 0.0; },
      TimeOfDay::hms(10, 0), TimeOfDay::hms(11, 0));
  const auto halves = ShadingProfile::compute(
      sq_.graph, [](roadnet::EdgeId, TimeOfDay) { return 0.5; },
      TimeOfDay::hms(10, 0), TimeOfDay::hms(11, 0));
  EXPECT_NEAR(zeros.mean_absolute_difference(halves), 0.5, 1e-6);
  EXPECT_DOUBLE_EQ(zeros.mean_absolute_difference(zeros), 0.0);
}

TEST_F(ShadingProfileTest, MeanAbsoluteDifferenceShapeMismatchThrows) {
  const auto a = ShadingProfile::compute(
      sq_.graph, [](roadnet::EdgeId, TimeOfDay) { return 0.0; },
      TimeOfDay::hms(10, 0), TimeOfDay::hms(11, 0));
  const auto b = ShadingProfile::compute(
      sq_.graph, [](roadnet::EdgeId, TimeOfDay) { return 0.0; },
      TimeOfDay::hms(10, 0), TimeOfDay::hms(12, 0));
  EXPECT_THROW((void)a.mean_absolute_difference(b), InvalidArgument);
}

TEST_F(ShadingProfileTest, NightIsFullyShaded) {
  const auto estimator = make_exact_estimator(sq_.graph, scene_,
                                              geo::DayOfYear{196});
  const roadnet::EdgeId e = sq_.graph.find_edge(0, 1);
  EXPECT_DOUBLE_EQ(estimator(e, TimeOfDay::hms(2, 0)), 1.0);
}

TEST_F(ShadingProfileTest, ShadowRotationChangesFractionOverDay) {
  // The same street must see different shading morning vs noon as
  // shadows rotate (the paper's Fig. 3 phenomenon).
  const auto profile = ShadingProfile::compute_exact(
      sq_.graph, scene_, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
      TimeOfDay::hms(18, 0));
  const roadnet::EdgeId e = sq_.graph.find_edge(0, 1);
  const double morning = profile.shaded_fraction(e, TimeOfDay::hms(8, 30));
  const double noon = profile.shaded_fraction(e, TimeOfDay::hms(13, 0));
  const double evening = profile.shaded_fraction(e, TimeOfDay::hms(17, 30));
  EXPECT_FALSE(morning == noon && noon == evening);
}

}  // namespace
}  // namespace sunchase::shadow
