#include "sunchase/shadow/vision.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "test_helpers.h"

namespace sunchase::shadow {
namespace {

class VisionTest : public ::testing::Test {
 protected:
  VisionTest() : scene_(sq_.proj, 5.0) {
    // Tower south of street 0->1 shades it at noon.
    scene_.add_building(
        Building{geo::rectangle({30, -40}, {60, -10}), 35.0});
  }
  test::SquareGraph sq_;
  Scene scene_;
};

TEST_F(VisionTest, RejectsBadOptions) {
  VisionOptions bad;
  bad.meters_per_px = 0.0;
  EXPECT_THROW(VisionPipeline(sq_.graph, scene_, bad), InvalidArgument);
  bad = VisionOptions{};
  bad.binarize_threshold = 30;  // below shadow value
  EXPECT_THROW(VisionPipeline(sq_.graph, scene_, bad), InvalidArgument);
}

TEST_F(VisionTest, RenderPaintsRoadsShadowsAndRoofs) {
  const VisionOptions opt;
  const VisionPipeline pipeline(sq_.graph, scene_, opt);
  const geo::Raster img = pipeline.render(test::south_sun_45());
  // Road pixel mid-way along the north street (y=100): illuminated.
  const auto [rx, ry] = img.to_pixel({50.0, 100.0});
  EXPECT_EQ(img.at(rx, ry), opt.road_value);
  // Roof pixel.
  const auto [bx, by] = img.to_pixel({45.0, -25.0});
  EXPECT_EQ(img.at(bx, by), opt.building_value);
  // Shadow north of the tower (35 m shadow from a 35 m tower at 45 deg
  // covers y in [-10, 25] above the footprint strip).
  const auto [sx, sy] = img.to_pixel({45.0, 0.0});
  EXPECT_EQ(img.at(sx, sy), opt.shadow_value);
}

TEST_F(VisionTest, EstimateTracksExactGeometry) {
  const VisionPipeline pipeline(sq_.graph, scene_, VisionOptions{});
  const auto sun = test::south_sun_45();
  const std::vector<double> estimated =
      pipeline.estimate_shaded_fractions(sun);
  const auto shadows = cast_shadows(scene_, sun);
  ASSERT_EQ(estimated.size(), sq_.graph.edge_count());
  for (roadnet::EdgeId e = 0; e < sq_.graph.edge_count(); ++e) {
    const double exact =
        shaded_fraction(scene_.edge_segment(sq_.graph, e), shadows);
    EXPECT_NEAR(estimated[e], exact, 0.12)
        << "edge " << e << " exact " << exact;
  }
}

TEST_F(VisionTest, SunDownMeansFullyShaded) {
  const VisionPipeline pipeline(sq_.graph, scene_, VisionOptions{});
  const auto fractions =
      pipeline.estimate_shaded_fractions(geo::SunPosition{-0.2, 0.0});
  for (const double f : fractions) EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST_F(VisionTest, EstimatorMemoizesPerSlot) {
  const VisionPipeline pipeline(sq_.graph, scene_, VisionOptions{});
  const ShadedFractionFn estimator =
      pipeline.make_estimator(geo::DayOfYear{196});
  const roadnet::EdgeId e = sq_.graph.find_edge(0, 1);
  // Two times in the same 15-min slot give identical values.
  EXPECT_DOUBLE_EQ(estimator(e, TimeOfDay::hms(13, 2)),
                   estimator(e, TimeOfDay::hms(13, 13)));
  const double f = estimator(e, TimeOfDay::hms(13, 2));
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST_F(VisionTest, ProfileFromVisionMatchesExactProfileClosely) {
  const VisionPipeline pipeline(sq_.graph, scene_, VisionOptions{});
  const auto vision_profile = ShadingProfile::compute(
      sq_.graph, pipeline.make_estimator(geo::DayOfYear{196}),
      TimeOfDay::hms(10, 0), TimeOfDay::hms(16, 0));
  const auto exact_profile = ShadingProfile::compute_exact(
      sq_.graph, scene_, geo::DayOfYear{196}, TimeOfDay::hms(10, 0),
      TimeOfDay::hms(16, 0));
  // The paper's area-ratio approximation: small mean error.
  EXPECT_LT(vision_profile.mean_absolute_difference(exact_profile), 0.08);
}

TEST_F(VisionTest, HoughFindsTheGridStreets) {
  const VisionPipeline pipeline(sq_.graph, scene_, VisionOptions{});
  geo::HoughParams params;
  params.vote_threshold = 40;
  params.sample_fraction = 0.8;
  Rng rng(5);
  const auto lines = pipeline.detect_road_lines(params, rng);
  EXPECT_GE(lines.size(), 2u);
  const double recall = pipeline.road_detection_recall(lines, 8.0);
  // The paper notes detection is imperfect (manual correction needed);
  // still, a plain 2x2 grid should be mostly found.
  EXPECT_GE(recall, 0.5);
}

TEST_F(VisionTest, FineResolutionErrorIsSmall) {
  // Pixel-boundary luck means error is not strictly monotone in
  // resolution; assert the absolute quality at sub-meter pixels instead.
  VisionOptions fine;
  fine.meters_per_px = 0.5;
  const VisionPipeline fine_pipe(sq_.graph, scene_, fine);
  const auto sun = test::south_sun_45();
  const auto shadows = cast_shadows(scene_, sun);
  const auto fine_est = fine_pipe.estimate_shaded_fractions(sun);
  double err = 0.0;
  for (roadnet::EdgeId e = 0; e < sq_.graph.edge_count(); ++e) {
    const double exact =
        shaded_fraction(scene_.edge_segment(sq_.graph, e), shadows);
    err += std::abs(fine_est[e] - exact);
  }
  EXPECT_LT(err / static_cast<double>(sq_.graph.edge_count()), 0.05);
}

}  // namespace
}  // namespace sunchase::shadow
