#include "sunchase/geo/polygon.h"

#include <gtest/gtest.h>

#include "sunchase/common/assert.h"

namespace sunchase::geo {
namespace {

Polygon unit_square() { return rectangle({0, 0}, {1, 1}); }

TEST(Polygon, SignedAreaCcwPositive) {
  EXPECT_DOUBLE_EQ(signed_area(unit_square()), 1.0);
  Polygon cw = unit_square();
  std::reverse(cw.vertices.begin(), cw.vertices.end());
  EXPECT_DOUBLE_EQ(signed_area(cw), -1.0);
  EXPECT_DOUBLE_EQ(area(cw), 1.0);
}

TEST(Polygon, AreaOfTriangle) {
  const Polygon tri{{{0, 0}, {4, 0}, {0, 3}}};
  EXPECT_DOUBLE_EQ(area(tri), 6.0);
}

TEST(Polygon, DegenerateAreaIsZero) {
  EXPECT_DOUBLE_EQ(area(Polygon{}), 0.0);
  EXPECT_DOUBLE_EQ(area(Polygon{{{1, 1}, {2, 2}}}), 0.0);
}

TEST(Polygon, MakeCcwFlipsClockwiseRings) {
  Polygon cw = unit_square();
  std::reverse(cw.vertices.begin(), cw.vertices.end());
  make_ccw(cw);
  EXPECT_GT(signed_area(cw), 0.0);
  Polygon already = unit_square();
  const Polygon before = already;
  make_ccw(already);
  EXPECT_EQ(already.vertices, before.vertices);
}

TEST(Polygon, ContainsInteriorAndBoundary) {
  const Polygon sq = unit_square();
  EXPECT_TRUE(contains(sq, {0.5, 0.5}));
  EXPECT_TRUE(contains(sq, {0.0, 0.5}));  // boundary counts as inside
  EXPECT_TRUE(contains(sq, {1.0, 1.0}));  // corner
  EXPECT_FALSE(contains(sq, {1.5, 0.5}));
  EXPECT_FALSE(contains(sq, {-0.1, -0.1}));
}

TEST(Polygon, ContainsConcaveShape) {
  // L-shape: the notch must be outside.
  const Polygon ell{{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}}};
  EXPECT_TRUE(contains(ell, {0.5, 1.5}));
  EXPECT_TRUE(contains(ell, {1.5, 0.5}));
  EXPECT_FALSE(contains(ell, {1.5, 1.5}));  // inside the notch
}

TEST(Polygon, BoundingBox) {
  const auto [lo, hi] = bounding_box(Polygon{{{2, -1}, {5, 3}, {0, 1}}});
  EXPECT_EQ(lo, (Vec2{0, -1}));
  EXPECT_EQ(hi, (Vec2{5, 3}));
  EXPECT_THROW((void)bounding_box(Polygon{}), ContractViolation);
}

TEST(ConvexHull, SquareWithInteriorPoints) {
  const Polygon hull = convex_hull(
      {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.7}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(area(hull), 1.0, 1e-12);
  EXPECT_GT(signed_area(hull), 0.0);  // CCW
}

TEST(ConvexHull, CollinearPointsDropped) {
  const Polygon hull =
      convex_hull({{0, 0}, {1, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 2}});
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHull, FewPointsPassThrough) {
  EXPECT_EQ(convex_hull({{1, 1}}).size(), 1u);
  EXPECT_EQ(convex_hull({{1, 1}, {2, 2}}).size(), 2u);
}

TEST(IsConvex, DetectsConvexityCorrectly) {
  EXPECT_TRUE(is_convex(unit_square()));
  const Polygon ell{{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}}};
  EXPECT_FALSE(is_convex(ell));
  EXPECT_FALSE(is_convex(Polygon{{{0, 0}, {1, 1}}}));
}

TEST(ClipSegment, FullyInside) {
  const auto iv =
      clip_segment_to_convex({{0.2, 0.5}, {0.8, 0.5}}, unit_square());
  ASSERT_TRUE(iv.has_value());
  EXPECT_NEAR(iv->lo, 0.0, 1e-12);
  EXPECT_NEAR(iv->hi, 1.0, 1e-12);
}

TEST(ClipSegment, CrossingBothSides) {
  const auto iv =
      clip_segment_to_convex({{-1.0, 0.5}, {2.0, 0.5}}, unit_square());
  ASSERT_TRUE(iv.has_value());
  // Inside for x in [0,1] of a segment spanning [-1,2]: t in [1/3, 2/3].
  EXPECT_NEAR(iv->lo, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(iv->hi, 2.0 / 3.0, 1e-12);
}

TEST(ClipSegment, MissingPolygonReturnsNullopt) {
  EXPECT_FALSE(
      clip_segment_to_convex({{-1.0, 5.0}, {2.0, 5.0}}, unit_square()));
  EXPECT_FALSE(
      clip_segment_to_convex({{2.0, 0.5}, {3.0, 0.5}}, unit_square()));
}

TEST(ClipSegment, TangentEdgeGivesNoInterval) {
  // Slides along the top edge: zero-length intersection is rejected.
  EXPECT_FALSE(
      clip_segment_to_convex({{-1.0, 1.0 + 1e-7}, {2.0, 1.0 + 1e-7}},
                             unit_square()));
}

TEST(ClipSegment, RequiresAtLeastTriangle) {
  EXPECT_THROW(
      (void)clip_segment_to_convex({{0, 0}, {1, 1}},
                                   Polygon{{{0, 0}, {1, 0}}}),
      ContractViolation);
}

TEST(Translated, ShiftsAllVertices) {
  const Polygon moved = translated(unit_square(), {10, -5});
  EXPECT_EQ(moved.vertices[0], (Vec2{10, -5}));
  EXPECT_EQ(moved.vertices[2], (Vec2{11, -4}));
  EXPECT_DOUBLE_EQ(area(moved), 1.0);
}

TEST(RegularPolygon, ApproximatesDiscArea) {
  const Polygon oct = regular_polygon({0, 0}, 1.0, 8);
  EXPECT_EQ(oct.size(), 8u);
  // Octagon area = 2*sqrt(2)*r^2 ~ 2.828; disc area pi.
  EXPECT_NEAR(area(oct), 2.828, 0.01);
  EXPECT_TRUE(is_convex(oct));
}

TEST(RegularPolygon, RejectsBadArguments) {
  EXPECT_THROW(regular_polygon({0, 0}, 0.0, 8), ContractViolation);
  EXPECT_THROW(regular_polygon({0, 0}, 1.0, 2), ContractViolation);
}

TEST(Rectangle, RejectsInvertedCorners) {
  EXPECT_THROW(rectangle({1, 1}, {0, 0}), ContractViolation);
}

// Property: clipping a random chord of a convex polygon yields an
// interval whose midpoint lies inside the polygon.
class ClipConsistency : public ::testing::TestWithParam<int> {};

TEST_P(ClipConsistency, MidpointOfClipIsInside) {
  const Polygon hex = regular_polygon({2.0, 3.0}, 5.0, 6);
  unsigned state = static_cast<unsigned>(GetParam()) * 747796405u + 1u;
  auto next = [&]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) / 16777216.0 * 20.0 - 10.0;  // [-10,10)
  };
  const Segment s{{next(), next()}, {next(), next()}};
  if (const auto iv = clip_segment_to_convex(s, hex)) {
    const Vec2 mid = s.point_at((iv->lo + iv->hi) / 2.0);
    EXPECT_TRUE(contains(hex, mid));
  } else {
    // No intersection claimed: the midpoint of the segment must not be
    // strictly inside (sample check).
    const Vec2 mid = s.point_at(0.5);
    const bool inside = contains(hex, mid);
    if (inside) {
      // Tolerate only boundary-grazing cases.
      double min_edge_dist = 1e18;
      for (std::size_t i = 0; i < hex.size(); ++i) {
        const Segment edge{hex.vertices[i],
                           hex.vertices[(i + 1) % hex.size()]};
        min_edge_dist = std::min(min_edge_dist, distance_to_segment(mid, edge));
      }
      EXPECT_LT(min_edge_dist, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomChords, ClipConsistency,
                         ::testing::Range(1, 50));

}  // namespace
}  // namespace sunchase::geo
