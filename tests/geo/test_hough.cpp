#include "sunchase/geo/hough.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sunchase/common/assert.h"

namespace sunchase::geo {
namespace {

constexpr double kPi = std::numbers::pi;

Raster blank(int size = 120) {
  return Raster(
      RasterFrame{{0, 0},
                  {static_cast<double>(size), static_cast<double>(size)},
                  1.0},
      0);
}

HoughParams lenient_params() {
  HoughParams p;
  p.vote_threshold = 30;
  p.sample_fraction = 1.0;  // deterministic voting for unit tests
  return p;
}

TEST(Hough, EmptyImageYieldsNoLines) {
  const Raster img = blank();
  Rng rng(1);
  EXPECT_TRUE(hough_lines(img, lenient_params(), rng).empty());
}

TEST(Hough, DetectsHorizontalLine) {
  Raster img = blank();
  img.fill_corridor({{10, 60}, {110, 60}}, 1.0, 255);
  Rng rng(2);
  const auto lines = hough_lines(img, lenient_params(), rng);
  ASSERT_FALSE(lines.empty());
  // A horizontal image line has theta ~ pi/2 (normal points up).
  EXPECT_NEAR(lines[0].theta_rad, kPi / 2.0, 0.06);
}

TEST(Hough, DetectsVerticalLine) {
  Raster img = blank();
  img.fill_corridor({{60, 10}, {60, 110}}, 1.0, 255);
  Rng rng(3);
  const auto lines = hough_lines(img, lenient_params(), rng);
  ASSERT_FALSE(lines.empty());
  // Vertical line: theta ~ 0 (normal horizontal).
  const double t = lines[0].theta_rad;
  EXPECT_TRUE(t < 0.06 || t > kPi - 0.06) << "theta " << t;
}

TEST(Hough, DetectsBothLinesOfACross) {
  Raster img = blank();
  img.fill_corridor({{10, 60}, {110, 60}}, 1.0, 255);
  img.fill_corridor({{60, 10}, {60, 110}}, 1.0, 255);
  Rng rng(4);
  const auto lines = hough_lines(img, lenient_params(), rng);
  ASSERT_GE(lines.size(), 2u);
  bool horizontal = false, vertical = false;
  for (const auto& line : lines) {
    if (std::abs(line.theta_rad - kPi / 2.0) < 0.1) horizontal = true;
    if (line.theta_rad < 0.1 || line.theta_rad > kPi - 0.1) vertical = true;
  }
  EXPECT_TRUE(horizontal);
  EXPECT_TRUE(vertical);
}

TEST(Hough, VotesOrderedStrongestFirst) {
  Raster img = blank();
  img.fill_corridor({{10, 30}, {110, 30}}, 1.0, 255);   // long line
  img.fill_corridor({{40, 90}, {80, 90}}, 1.0, 255);    // short line
  Rng rng(5);
  const auto lines = hough_lines(img, lenient_params(), rng);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_GE(lines[0].votes, lines[1].votes);
}

TEST(Hough, NonMaxSuppressionAvoidsDuplicates) {
  Raster img = blank();
  img.fill_corridor({{10, 60}, {110, 60}}, 2.0, 255);  // thick line
  Rng rng(6);
  const auto lines = hough_lines(img, lenient_params(), rng);
  // A 4 px thick line must not explode into many detections.
  EXPECT_LE(lines.size(), 3u);
}

TEST(Hough, SampleFractionStillFindsStrongLine) {
  Raster img = blank();
  img.fill_corridor({{10, 60}, {110, 60}}, 1.5, 255);
  HoughParams p = lenient_params();
  p.sample_fraction = 0.4;
  p.vote_threshold = 15;
  Rng rng(7);
  const auto lines = hough_lines(img, p, rng);
  ASSERT_FALSE(lines.empty());
  EXPECT_NEAR(lines[0].theta_rad, kPi / 2.0, 0.1);
}

TEST(Hough, RejectsBadParameters) {
  const Raster img = blank();
  Rng rng(8);
  HoughParams p = lenient_params();
  p.rho_resolution_px = 0.0;
  EXPECT_THROW(hough_lines(img, p, rng), ContractViolation);
  p = lenient_params();
  p.sample_fraction = 0.0;
  EXPECT_THROW(hough_lines(img, p, rng), ContractViolation);
}

TEST(Hough, LineToWorldSegmentRecoversGeometry) {
  Raster img = blank();
  img.fill_corridor({{10, 60}, {110, 60}}, 1.0, 255);
  Rng rng(9);
  const auto lines = hough_lines(img, lenient_params(), rng);
  ASSERT_FALSE(lines.empty());
  const Segment world = line_to_world_segment(lines[0], img);
  // The recovered world line passes near world point (60, 60).
  EXPECT_LT(distance_to_segment({60.0, 60.0}, world), 2.5);
}

}  // namespace
}  // namespace sunchase::geo
