#include <gtest/gtest.h>

#include "sunchase/geo/segment.h"
#include "sunchase/geo/vec2.h"

namespace sunchase::geo {
namespace {

TEST(Vec2, BasicArithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot(Vec2{1, 0}, Vec2{0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(dot(Vec2{2, 3}, Vec2{4, 5}), 23.0);
  EXPECT_DOUBLE_EQ(cross(Vec2{1, 0}, Vec2{0, 1}), 1.0);   // CCW positive
  EXPECT_DOUBLE_EQ(cross(Vec2{0, 1}, Vec2{1, 0}), -1.0);  // CW negative
}

TEST(Vec2, NormAndNormalize) {
  EXPECT_DOUBLE_EQ(norm(Vec2{3, 4}), 5.0);
  const Vec2 u = normalized(Vec2{3, 4});
  EXPECT_NEAR(u.x, 0.6, 1e-12);
  EXPECT_NEAR(u.y, 0.8, 1e-12);
  EXPECT_EQ(normalized(Vec2{0, 0}), (Vec2{0, 0}));
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 r = rotated(Vec2{1, 0}, 3.14159265358979323846 / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec2, PerpIsCcwNormal) {
  EXPECT_EQ(perp(Vec2{1, 0}), (Vec2{0, 1}));
  EXPECT_EQ(perp(Vec2{0, 1}), (Vec2{-1, 0}));
}

TEST(Segment, LengthAndPointAt) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(s.length(), 10.0);
  EXPECT_EQ(s.point_at(0.0), (Vec2{0, 0}));
  EXPECT_EQ(s.point_at(0.5), (Vec2{5, 0}));
  EXPECT_EQ(s.point_at(1.0), (Vec2{10, 0}));
}

TEST(Segment, ProjectionClampsToEndpoints) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(project_onto_segment(Vec2{-5, 3}, s), 0.0);
  EXPECT_DOUBLE_EQ(project_onto_segment(Vec2{15, 3}, s), 1.0);
  EXPECT_DOUBLE_EQ(project_onto_segment(Vec2{4, 3}, s), 0.4);
}

TEST(Segment, DistanceToSegment) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(distance_to_segment(Vec2{5, 3}, s), 3.0);
  EXPECT_DOUBLE_EQ(distance_to_segment(Vec2{-3, 4}, s), 5.0);
  EXPECT_DOUBLE_EQ(distance_to_segment(Vec2{5, 0}, s), 0.0);
}

TEST(Segment, DegenerateSegmentActsAsPoint) {
  const Segment s{{2, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(project_onto_segment(Vec2{9, 9}, s), 0.0);
  EXPECT_NEAR(distance_to_segment(Vec2{5, 6}, s), 5.0, 1e-12);
}

TEST(SegmentIntersect, CrossingSegments) {
  const auto hit =
      intersect(Segment{{0, 0}, {10, 10}}, Segment{{0, 10}, {10, 0}});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->first, 0.5, 1e-12);
  EXPECT_NEAR(hit->second, 0.5, 1e-12);
}

TEST(SegmentIntersect, ParallelReturnsNullopt) {
  EXPECT_FALSE(
      intersect(Segment{{0, 0}, {10, 0}}, Segment{{0, 1}, {10, 1}}));
}

TEST(SegmentIntersect, DisjointReturnsNullopt) {
  EXPECT_FALSE(
      intersect(Segment{{0, 0}, {1, 1}}, Segment{{5, 0}, {6, 1}}));
}

TEST(SegmentIntersect, TouchingEndpointsCounts) {
  const auto hit =
      intersect(Segment{{0, 0}, {5, 5}}, Segment{{5, 5}, {10, 0}});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->first, 1.0, 1e-9);
  EXPECT_NEAR(hit->second, 0.0, 1e-9);
}

TEST(Intervals, MergeOverlapping) {
  const auto merged =
      merge_intervals({{0.0, 0.4}, {0.3, 0.6}, {0.8, 0.9}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (Interval{0.0, 0.6}));
  EXPECT_EQ(merged[1], (Interval{0.8, 0.9}));
}

TEST(Intervals, MergeTouchingIntervalsJoins) {
  const auto merged = merge_intervals({{0.0, 0.5}, {0.5, 1.0}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Interval{0.0, 1.0}));
}

TEST(Intervals, CoveredLengthHandlesNesting) {
  EXPECT_DOUBLE_EQ(covered_length({{0.0, 1.0}, {0.2, 0.5}}), 1.0);
  EXPECT_DOUBLE_EQ(covered_length({{0.1, 0.2}, {0.4, 0.6}}), 0.3);
  EXPECT_DOUBLE_EQ(covered_length({}), 0.0);
}

// Property sweep: covered length of k random sub-intervals never
// exceeds 1 and never falls below the longest single interval.
class CoveredLengthProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoveredLengthProperty, BoundsHold) {
  const int seed = GetParam();
  // Simple deterministic pseudo-random intervals from the seed.
  std::vector<Interval> intervals;
  double longest = 0.0;
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
  auto next = [&]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) / 16777216.0;  // [0,1)
  };
  for (int i = 0; i < 10; ++i) {
    double a = next(), b = next();
    if (a > b) std::swap(a, b);
    intervals.push_back({a, b});
    longest = std::max(longest, b - a);
  }
  const double covered = covered_length(intervals);
  EXPECT_LE(covered, 1.0 + 1e-12);
  EXPECT_GE(covered, longest - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CoveredLengthProperty,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace sunchase::geo
