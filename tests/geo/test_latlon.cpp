#include "sunchase/geo/latlon.h"

#include <gtest/gtest.h>

namespace sunchase::geo {
namespace {

TEST(Haversine, ZeroForIdenticalPoints) {
  const LatLon p{45.5, -73.57};
  EXPECT_DOUBLE_EQ(haversine_distance(p, p).value(), 0.0);
}

TEST(Haversine, OneDegreeLatitudeIsAbout111km) {
  const Meters d =
      haversine_distance(LatLon{45.0, -73.0}, LatLon{46.0, -73.0});
  EXPECT_NEAR(d.value(), 111195.0, 200.0);
}

TEST(Haversine, LongitudeShrinksWithLatitude) {
  const Meters at_equator =
      haversine_distance(LatLon{0.0, 10.0}, LatLon{0.0, 11.0});
  const Meters at_60n =
      haversine_distance(LatLon{60.0, 10.0}, LatLon{60.0, 11.0});
  EXPECT_NEAR(at_60n.value() / at_equator.value(), 0.5, 0.01);
}

TEST(Haversine, Symmetric) {
  const LatLon a{45.4995, -73.5700};
  const LatLon b{45.5080, -73.5617};
  EXPECT_DOUBLE_EQ(haversine_distance(a, b).value(),
                   haversine_distance(b, a).value());
}

TEST(Haversine, KnownCityPairSanity) {
  // Montreal <-> Quebec City: ~233 km great-circle.
  const Meters d = haversine_distance(LatLon{45.5019, -73.5674},
                                      LatLon{46.8131, -71.2075});
  EXPECT_NEAR(d.value(), 233000.0, 3000.0);
}

TEST(LatLonValidity, AcceptsRangeAndRejectsOutside) {
  EXPECT_TRUE(is_valid(LatLon{90.0, 180.0}));
  EXPECT_TRUE(is_valid(LatLon{-90.0, -180.0}));
  EXPECT_FALSE(is_valid(LatLon{90.1, 0.0}));
  EXPECT_FALSE(is_valid(LatLon{0.0, 180.5}));
}

TEST(LocalProjection, OriginMapsToZero) {
  const LocalProjection proj(LatLon{45.4995, -73.5700});
  const Vec2 v = proj.to_local(proj.origin());
  EXPECT_NEAR(v.x, 0.0, 1e-9);
  EXPECT_NEAR(v.y, 0.0, 1e-9);
}

TEST(LocalProjection, RoundTripIsExact) {
  const LocalProjection proj(LatLon{45.4995, -73.5700});
  for (const Vec2 v : {Vec2{120.0, -80.0}, Vec2{-950.0, 430.0},
                       Vec2{2500.0, 2500.0}}) {
    const Vec2 back = proj.to_local(proj.to_geo(v));
    EXPECT_NEAR(back.x, v.x, 1e-6);
    EXPECT_NEAR(back.y, v.y, 1e-6);
  }
}

TEST(LocalProjection, AgreesWithHaversineLocally) {
  const LocalProjection proj(LatLon{45.4995, -73.5700});
  const LatLon p = proj.to_geo(Vec2{500.0, 300.0});
  const Meters true_d = haversine_distance(proj.origin(), p);
  const double planar_d = norm(proj.to_local(p));
  // Centimeter-level agreement over half a kilometer.
  EXPECT_NEAR(planar_d, true_d.value(), 0.05);
}

TEST(LocalProjection, NorthIsPositiveY) {
  const LocalProjection proj(LatLon{45.4995, -73.5700});
  const Vec2 north = proj.to_local(LatLon{45.5095, -73.5700});
  EXPECT_GT(north.y, 0.0);
  EXPECT_NEAR(north.x, 0.0, 1e-9);
}

TEST(LocalProjection, EastIsPositiveX) {
  const LocalProjection proj(LatLon{45.4995, -73.5700});
  const Vec2 east = proj.to_local(LatLon{45.4995, -73.5600});
  EXPECT_GT(east.x, 0.0);
  EXPECT_NEAR(east.y, 0.0, 1e-9);
}

}  // namespace
}  // namespace sunchase::geo
