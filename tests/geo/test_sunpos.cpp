#include "sunchase/geo/sunpos.h"

#include <gtest/gtest.h>

#include <numbers>

namespace sunchase::geo {
namespace {

constexpr double kPi = std::numbers::pi;
const LatLon kMontreal{45.4995, -73.5700};
const DayOfYear kJuly{196};  // ~July 15

double deg(double rad) { return rad * 180.0 / kPi; }

TEST(SolarDeclination, JulyIsSummerNorth) {
  // Mid-July declination ~ +21.5 degrees.
  EXPECT_NEAR(deg(solar_declination(kJuly)), 21.5, 1.0);
}

TEST(SolarDeclination, EquinoxNearZero) {
  // ~March 21 (day 80).
  EXPECT_NEAR(deg(solar_declination(DayOfYear{80})), 0.0, 1.5);
}

TEST(SolarDeclination, DecemberSolsticeNegative) {
  EXPECT_NEAR(deg(solar_declination(DayOfYear{355})), -23.4, 0.5);
}

TEST(EquationOfTime, JulyIsSmallNegative) {
  // Mid-July EoT ~ -6 minutes.
  EXPECT_NEAR(equation_of_time_minutes(kJuly), -6.0, 2.0);
}

TEST(SunPosition, NightBeforeDawn) {
  const auto sun = sun_position(kMontreal, kJuly, TimeOfDay::hms(3, 0));
  EXPECT_FALSE(sun.is_up());
}

TEST(SunPosition, MiddayElevationMontrealJuly) {
  // Solar noon elevation = 90 - |lat - decl| ~ 90 - 24 = 66 degrees.
  const auto sun = sun_position(kMontreal, kJuly, TimeOfDay::hms(13, 10));
  EXPECT_NEAR(deg(sun.elevation_rad), 66.0, 2.0);
}

TEST(SunPosition, MorningSunInEast) {
  const auto sun = sun_position(kMontreal, kJuly, TimeOfDay::hms(8, 0));
  EXPECT_TRUE(sun.is_up());
  EXPECT_GT(deg(sun.azimuth_rad), 60.0);
  EXPECT_LT(deg(sun.azimuth_rad), 120.0);  // roughly east
}

TEST(SunPosition, AfternoonSunInWest) {
  const auto sun = sun_position(kMontreal, kJuly, TimeOfDay::hms(18, 0));
  EXPECT_TRUE(sun.is_up());
  EXPECT_GT(deg(sun.azimuth_rad), 240.0);
  EXPECT_LT(deg(sun.azimuth_rad), 300.0);  // roughly west
}

TEST(SunPosition, ElevationRisesTowardNoon) {
  double prev = -1.0;
  for (int h = 6; h <= 13; ++h) {
    const auto sun = sun_position(kMontreal, kJuly, TimeOfDay::hms(h, 0));
    EXPECT_GT(sun.elevation_rad, prev);
    prev = sun.elevation_rad;
  }
}

TEST(SunPosition, SouthernHemisphereNoonSunIsNorth) {
  const LatLon sydney{-33.87, 151.21};
  // Local noon in Sydney (UTC+10), January (southern summer).
  const auto sun =
      sun_position(sydney, DayOfYear{15}, TimeOfDay::hms(12, 0), 10.0);
  EXPECT_TRUE(sun.is_up());
  const double az = deg(sun.azimuth_rad);
  EXPECT_TRUE(az < 60.0 || az > 300.0) << "azimuth " << az;
}

TEST(ShadowDirection, MorningShadowsPointWestward) {
  const auto sun = sun_position(kMontreal, kJuly, TimeOfDay::hms(9, 0));
  const Vec2 d = shadow_direction(sun);
  EXPECT_LT(d.x, 0.0);  // away from an eastern sun = toward west
  EXPECT_NEAR(norm(d), 1.0, 1e-12);
}

TEST(ShadowDirection, NoonShadowsPointNorth) {
  // True solar noon in Montreal (EDT) is ~13:10.
  const auto sun = sun_position(kMontreal, kJuly, TimeOfDay::hms(13, 10));
  const Vec2 d = shadow_direction(sun);
  EXPECT_GT(d.y, 0.9);  // almost due north
}

TEST(ShadowLength, FortyFiveDegreesEqualsHeight) {
  const SunPosition sun{kPi / 4.0, kPi};
  EXPECT_NEAR(shadow_length(sun, 20.0), 20.0, 1e-9);
}

TEST(ShadowLength, LowSunIsClampedNotInfinite) {
  const SunPosition sun{0.001, kPi};
  EXPECT_DOUBLE_EQ(shadow_length(sun, 10.0), 200.0);  // 20x height cap
}

TEST(ShadowLength, SunDownOrZeroHeightIsZero) {
  EXPECT_DOUBLE_EQ(shadow_length(SunPosition{-0.1, 0.0}, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(shadow_length(SunPosition{0.5, 0.0}, 0.0), 0.0);
}

TEST(ShadowLength, HigherSunShorterShadow) {
  const double low = shadow_length(SunPosition{0.3, 0.0}, 10.0);
  const double high = shadow_length(SunPosition{1.0, 0.0}, 10.0);
  EXPECT_GT(low, high);
}

// Property sweep: through the whole paper test day the sun stays below
// 90 degrees, azimuth wraps 0..360, and shadows always have the
// opposite heading to the sun.
class SunDayProperty : public ::testing::TestWithParam<int> {};

TEST_P(SunDayProperty, GeometryInvariants) {
  const int minutes_since_8am = GetParam() * 30;
  const TimeOfDay t = TimeOfDay::hms(8, 0).advanced_by(
      Seconds{static_cast<double>(minutes_since_8am) * 60.0});
  const auto sun = sun_position(kMontreal, kJuly, t);
  EXPECT_LT(sun.elevation_rad, kPi / 2.0);
  EXPECT_GE(sun.azimuth_rad, 0.0);
  EXPECT_LT(sun.azimuth_rad, 2.0 * kPi);
  if (sun.is_up()) {
    const Vec2 toward_sun{std::sin(sun.azimuth_rad),
                          std::cos(sun.azimuth_rad)};
    EXPECT_NEAR(dot(shadow_direction(sun), toward_sun), -1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(HalfHourSteps, SunDayProperty,
                         ::testing::Range(0, 21));  // 8:00 .. 18:00

}  // namespace
}  // namespace sunchase::geo
