#include "sunchase/geo/raster.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sunchase/common/assert.h"
#include "sunchase/common/error.h"

namespace sunchase::geo {
namespace {

RasterFrame small_frame() {
  return RasterFrame{{0.0, 0.0}, {100.0, 50.0}, 1.0};
}

TEST(RasterFrame, PixelDimensions) {
  const RasterFrame f = small_frame();
  EXPECT_EQ(f.width_px(), 100);
  EXPECT_EQ(f.height_px(), 50);
  const RasterFrame coarse{{0.0, 0.0}, {100.0, 50.0}, 2.0};
  EXPECT_EQ(coarse.width_px(), 50);
  EXPECT_EQ(coarse.height_px(), 25);
}

TEST(Raster, ConstructionAndBackground) {
  const Raster r(small_frame(), 7);
  EXPECT_EQ(r.width(), 100);
  EXPECT_EQ(r.height(), 50);
  EXPECT_EQ(r.at(0, 0), 7);
  EXPECT_EQ(r.at(99, 49), 7);
}

TEST(Raster, RejectsDegenerateFrames) {
  EXPECT_THROW(Raster(RasterFrame{{0, 0}, {10, 10}, 0.0}), InvalidArgument);
  EXPECT_THROW(Raster(RasterFrame{{10, 10}, {0, 0}, 1.0}), InvalidArgument);
  EXPECT_THROW(Raster(RasterFrame{{0, 0}, {100000, 100000}, 0.1}),
               InvalidArgument);
}

TEST(Raster, OutOfBoundsAccessThrows) {
  Raster r(small_frame());
  EXPECT_THROW((void)r.at(-1, 0), ContractViolation);
  EXPECT_THROW((void)r.at(100, 0), ContractViolation);
  EXPECT_THROW(r.set(0, 50, 1), ContractViolation);
}

TEST(Raster, WorldPixelMappingTopLeftIsNorthWest) {
  const Raster r(small_frame());
  // World (0.5, 49.5) = north-west corner pixel center -> pixel (0, 0).
  const auto [x, y] = r.to_pixel({0.5, 49.5});
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 0);
  const Vec2 c = r.pixel_center(0, 0);
  EXPECT_DOUBLE_EQ(c.x, 0.5);
  EXPECT_DOUBLE_EQ(c.y, 49.5);
}

TEST(Raster, PixelRoundTrip) {
  const Raster r(small_frame());
  for (int x : {0, 13, 99})
    for (int y : {0, 27, 49}) {
      const auto [px, py] = r.to_pixel(r.pixel_center(x, y));
      EXPECT_EQ(px, x);
      EXPECT_EQ(py, y);
    }
}

TEST(Raster, FillPolygonCoversExpectedArea) {
  Raster r(small_frame(), 0);
  r.fill_polygon(rectangle({10, 10}, {30, 30}), 255);
  long painted = 0;
  for (int y = 0; y < r.height(); ++y)
    for (int x = 0; x < r.width(); ++x)
      if (r.at(x, y) == 255) ++painted;
  EXPECT_NEAR(static_cast<double>(painted), 400.0, 45.0);  // 20x20 m at 1 m/px
}

TEST(Raster, DarkenPolygonOnlyDarkens) {
  Raster r(small_frame(), 100);
  r.darken_polygon(rectangle({10, 10}, {20, 20}), 40);
  EXPECT_EQ(r.at(15, r.height() - 16), 40);
  r.darken_polygon(rectangle({10, 10}, {20, 20}), 80);  // lighter: no-op
  EXPECT_EQ(r.at(15, r.height() - 16), 40);
}

TEST(Raster, CorridorFillAndCount) {
  Raster r(small_frame(), 0);
  const Segment road{{10, 25}, {90, 25}};
  r.fill_corridor(road, 3.0, 200);
  const long total = r.count_corridor(road, 3.0,
                                      [](std::uint8_t v) { return v == 200; });
  // ~80 m x 6 m corridor plus rounded caps.
  EXPECT_GT(total, 400);
  EXPECT_LT(total, 620);
  // Everything inside the corridor was painted.
  const long unpainted = r.count_corridor(
      road, 3.0, [](std::uint8_t v) { return v != 200; });
  EXPECT_EQ(unpainted, 0);
}

TEST(Raster, CorridorRequiresPositiveWidth) {
  Raster r(small_frame());
  EXPECT_THROW(r.fill_corridor({{0, 0}, {10, 0}}, 0.0, 1), ContractViolation);
  EXPECT_THROW(
      (void)r.count_corridor({{0, 0}, {10, 0}}, -1.0, [](std::uint8_t) {
        return true;
      }),
      ContractViolation);
}

TEST(Raster, BinarizeThreshold) {
  Raster r(small_frame(), 100);
  r.set(0, 0, 200);
  r.set(1, 0, 127);
  r.binarize(128);
  EXPECT_EQ(r.at(0, 0), 255);
  EXPECT_EQ(r.at(1, 0), 0);
  EXPECT_EQ(r.at(5, 5), 0);  // background 100 < 128
}

TEST(Raster, WritePgmProducesValidHeader) {
  Raster r(RasterFrame{{0, 0}, {4, 2}, 1.0}, 9);
  const std::string path = ::testing::TempDir() + "/sunchase_test.pgm";
  r.write_pgm(path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  char first = 0;
  in.get(first);
  EXPECT_EQ(static_cast<unsigned char>(first), 9);
  std::remove(path.c_str());
}

TEST(Raster, WritePgmBadPathThrows) {
  const Raster r(small_frame());
  EXPECT_THROW(r.write_pgm("/nonexistent_dir_xyz/file.pgm"), IoError);
}

}  // namespace
}  // namespace sunchase::geo
