#include "sunchase/obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "json_check.h"
#include "sunchase/common/thread_pool.h"
#include "sunchase/obs/trace.h"

namespace sunchase::obs {
namespace {

/// The profiler is a process-wide singleton; every test starts from
/// empty folds and leaves the sampler stopped.
class ObsProfiler : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::global().stop();
    Profiler::global().reset();
  }
  void TearDown() override {
    Profiler::global().stop();
    Profiler::global().reset();
  }
};

std::uint64_t fold_count(const std::string& stack) {
  for (const ProfileEntry& entry : Profiler::global().entries())
    if (entry.stack == stack) return entry.count;
  return 0;
}

TEST_F(ObsProfiler, ThreadCpuSecondsAdvancesUnderWork) {
  const double before = thread_cpu_seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1e-9;
  const double after = thread_cpu_seconds();
  EXPECT_GT(after, before);
}

TEST_F(ObsProfiler, SampleFoldsTheCurrentSpanNesting) {
  const SpanTimer outer("outer");
  {
    const SpanTimer inner("inner");
    Profiler::global().sample_once();
  }
  Profiler::global().sample_once();
  EXPECT_GE(fold_count("outer;inner"), 1u);
  EXPECT_GE(fold_count("outer"), 1u);
}

TEST_F(ObsProfiler, SamplingWorksWithTracingDisabled) {
  // The span stack is pushed unconditionally: the profiler must see
  // spans even when the Tracer never records them.
  ASSERT_FALSE(Tracer::global().enabled());
  const SpanTimer span("untraced");
  Profiler::global().sample_once();
  EXPECT_GE(fold_count("untraced"), 1u);
}

TEST_F(ObsProfiler, IdleSamplesCountSeparatelyAndInvariantHolds) {
  // total - idle == sum of fold counts: every per-thread sample either
  // folded a stack or found the thread outside any span.
  Profiler::global().thread_stack();  // registered, no span open
  Profiler::global().sample_once();
  { const SpanTimer span("busy");
    Profiler::global().sample_once(); }
  std::uint64_t folded = 0;
  for (const ProfileEntry& entry : Profiler::global().entries())
    folded += entry.count;
  EXPECT_EQ(Profiler::global().samples_total() -
                Profiler::global().samples_idle(),
            folded);
  EXPECT_GE(Profiler::global().samples_idle(), 1u);
}

TEST_F(ObsProfiler, RegisteredButSpanlessThreadsSampleAsIdleNotCrash) {
  // Satellite regression: a thread that registers with the profiler but
  // never opens a span must sample as idle — never dereference a null
  // span-stack head — including across ThreadPool churn that recycles
  // stacks through the free list.
  for (int round = 0; round < 4; ++round) {
    common::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < 8; ++t)
      futures.push_back(pool.submit([] {
        Profiler::global().thread_stack();  // register only, no span
      }));
    for (auto& f : futures) f.get();
    Profiler::global().sample_once();
  }
  EXPECT_GE(Profiler::global().samples_idle(), 1u);
}

TEST_F(ObsProfiler, StackRegistrationStaysBoundedUnderThreadChurn) {
  const std::size_t before = Profiler::global().registered_stacks();
  for (int round = 0; round < 8; ++round) {
    common::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < 4; ++t)
      futures.push_back(pool.submit([] {
        const SpanTimer span("churn");
      }));
    for (auto& f : futures) f.get();
  }
  // 8 rounds x 4 workers would be 32 fresh stacks without recycling;
  // the free list caps growth at the peak concurrent thread count.
  EXPECT_LE(Profiler::global().registered_stacks(), before + 8);
}

TEST_F(ObsProfiler, DeepNestingBeyondMaxDepthStaysBalanced) {
  constexpr int kDepth = 80;  // > SpanStack::kMaxDepth == 64
  std::vector<std::unique_ptr<SpanTimer>> spans;
  for (int i = 0; i < kDepth; ++i)
    spans.push_back(std::make_unique<SpanTimer>("deep"));
  Profiler::global().sample_once();
  spans.clear();  // pops all the way back to empty
  EXPECT_EQ(Profiler::global().thread_stack().depth(), 0u);
  // The folded stack records at most kMaxDepth frames.
  std::string deepest;
  for (const ProfileEntry& entry : Profiler::global().entries())
    if (entry.stack.size() > deepest.size()) deepest = entry.stack;
  std::size_t frames = deepest.empty() ? 0 : 1;
  for (const char c : deepest)
    if (c == ';') ++frames;
  EXPECT_LE(frames, static_cast<std::size_t>(detail::SpanStack::kMaxDepth));
}

TEST_F(ObsProfiler, SpanStackScopeInstallsAndRemovesPrefix) {
  const std::vector<const char*> prefix = {"serve.request"};
  {
    const SpanStackScope scope(prefix);
    const SpanTimer span("batch.query");
    Profiler::global().sample_once();
  }
  EXPECT_GE(fold_count("serve.request;batch.query"), 1u);
  EXPECT_EQ(Profiler::global().thread_stack().depth(), 0u);
}

TEST_F(ObsProfiler, CurrentSpanStackCapturesOutermostFirst) {
  const SpanTimer outer("outer");
  const SpanTimer inner("inner");
  const std::vector<const char*> frames = current_span_stack();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_STREQ(frames[0], "outer");
  EXPECT_STREQ(frames[1], "inner");
}

TEST_F(ObsProfiler, CollapsedAndJsonExportsAgree) {
  {
    const SpanTimer a("alpha");
    Profiler::global().sample_once();
    Profiler::global().sample_once();
  }
  const std::string collapsed = Profiler::global().collapsed();
  EXPECT_NE(collapsed.find("alpha 2"), std::string::npos) << collapsed;
  const std::string json = Profiler::global().to_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
  EXPECT_NE(json.find("\"stack\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"samples_total\""), std::string::npos);
}

TEST_F(ObsProfiler, ResetDropsFoldsAndCounters) {
  { const SpanTimer span("gone");
    Profiler::global().sample_once(); }
  Profiler::global().reset();
  EXPECT_TRUE(Profiler::global().entries().empty());
  EXPECT_EQ(Profiler::global().samples_total(), 0u);
  EXPECT_EQ(Profiler::global().samples_idle(), 0u);
}

TEST_F(ObsProfiler, EntriesSortByCountDescendingAndTruncate) {
  {
    const SpanTimer hot("hot");
    Profiler::global().sample_once();
    Profiler::global().sample_once();
    Profiler::global().sample_once();
  }
  {
    const SpanTimer cold("cold");
    Profiler::global().sample_once();
  }
  const std::vector<ProfileEntry> all = Profiler::global().entries();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].stack, "hot");
  EXPECT_EQ(all[1].stack, "cold");
  EXPECT_EQ(Profiler::global().entries(1).size(), 1u);
}

TEST_F(ObsProfiler, StartStopRunsTheSamplerThread) {
  Profiler::global().start(Profiler::Options{1});
  EXPECT_TRUE(Profiler::global().running());
  EXPECT_EQ(Profiler::global().interval_ms(), 1);
  {
    const SpanTimer span("sampled");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Profiler::global().stop();
  EXPECT_FALSE(Profiler::global().running());
  EXPECT_GE(fold_count("sampled"), 1u);
  // Folds survive stop(); a second stop is a no-op.
  Profiler::global().stop();
  EXPECT_GE(Profiler::global().samples_total(), 1u);
}

TEST_F(ObsProfiler, StartClampsNonPositiveIntervals) {
  Profiler::global().start(Profiler::Options{-5});
  EXPECT_EQ(Profiler::global().interval_ms(), 1);
  Profiler::global().stop();
}

// TSan-facing suite (the sanitize job's -R regex matches "Prof"): the
// sampler reads span stacks while worker threads push/pop them. Any
// non-atomic access would trip TSan here.
TEST_F(ObsProfiler, ProfilerSamplesRacingSpanPushPopAreClean) {
  Profiler::global().start(Profiler::Options{1});
  constexpr int kThreads = 4;
  {
    common::ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kThreads; ++t)
      futures.push_back(pool.submit([] {
        for (int i = 0; i < 2000; ++i) {
          const SpanTimer outer("race.outer");
          const SpanTimer inner("race.inner");
        }
      }));
    for (auto& f : futures) f.get();
  }
  Profiler::global().stop();
  // Every fold the sampler saw is one of the two well-formed stacks —
  // a torn sample may drop frames but never invents them.
  for (const ProfileEntry& entry : Profiler::global().entries()) {
    EXPECT_TRUE(entry.stack == "race.outer" ||
                entry.stack == "race.outer;race.inner" ||
                entry.stack == "race.inner")
        << entry.stack;
  }
}

TEST_F(ObsProfiler, SampleOnceRacingRegistrationIsClean) {
  std::atomic<bool> stop{false};
  std::thread sampler([&stop] {
    while (!stop.load()) Profiler::global().sample_once();
  });
  for (int round = 0; round < 8; ++round) {
    common::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < 8; ++t)
      futures.push_back(pool.submit([] {
        const SpanTimer span("register.race");
      }));
    for (auto& f : futures) f.get();
  }
  stop.store(true);
  sampler.join();
  SUCCEED();  // the assertion is TSan finding no data race
}

}  // namespace
}  // namespace sunchase::obs
