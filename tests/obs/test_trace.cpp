#include "sunchase/obs/trace.h"

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "json_check.h"

namespace sunchase::obs {
namespace {

/// The tracer is a process-wide singleton: every test starts from a
/// clean, enabled slate and disables tracing on the way out.
class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

TEST_F(ObsTrace, DisabledSpansRecordNothing) {
  Tracer::global().set_enabled(false);
  { const SpanTimer span("ignored"); }
  EXPECT_EQ(Tracer::global().span_count(), 0u);
}

TEST_F(ObsTrace, RecordsCompletedSpans) {
  {
    const SpanTimer outer("outer");
    const SpanTimer inner("inner");
  }
  EXPECT_EQ(Tracer::global().span_count(), 2u);
  EXPECT_EQ(Tracer::global().dropped_count(), 0u);
}

TEST_F(ObsTrace, ClearForgetsSpans) {
  { const SpanTimer span("s"); }
  ASSERT_GT(Tracer::global().span_count(), 0u);
  Tracer::global().clear();
  EXPECT_EQ(Tracer::global().span_count(), 0u);
}

TEST_F(ObsTrace, ChromeExportParsesAsJson) {
  {
    const SpanTimer a("alpha");
    const SpanTimer b("beta");
  }
  const std::string json = Tracer::global().to_chrome_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTrace, EmptyExportIsStillValidJson) {
  const std::string json = Tracer::global().to_chrome_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
}

/// Spans on one thread must nest by containment: for any two spans on
/// the same tid, their [ts, ts+dur] intervals are either disjoint or
/// one contains the other — that is what Perfetto renders as a stack.
void expect_nesting(const std::vector<TraceEvent>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const auto a0 = events[i].ts_us, a1 = events[i].ts_us + events[i].dur_us;
      const auto b0 = events[j].ts_us, b1 = events[j].ts_us + events[j].dur_us;
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool a_in_b = b0 <= a0 && a1 <= b1;
      const bool b_in_a = a0 <= b0 && b1 <= a1;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << events[i].name << " [" << a0 << "," << a1 << ") vs "
          << events[j].name << " [" << b0 << "," << b1 << ")";
    }
  }
}

TEST_F(ObsTrace, NestedScopesProduceContainedSpans) {
  {
    const SpanTimer outer("outer");
    { const SpanTimer inner1("inner1"); }
    { const SpanTimer inner2("inner2"); }
  }
  const auto events = Tracer::global().thread_buffer().drain_copy();
  ASSERT_EQ(events.size(), 3u);
  expect_nesting(events);
  // RAII order: inner spans complete (and record) before the outer one.
  EXPECT_STREQ(events[2].name, "outer");
  const auto outer = events[2];
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(events[i].ts_us, outer.ts_us);
    EXPECT_LE(events[i].ts_us + events[i].dur_us,
              outer.ts_us + outer.dur_us);
  }
}

TEST_F(ObsTrace, EachThreadGetsItsOwnTid) {
  // Dedicated std::threads (a pool on a 1-CPU box may let one worker
  // drain every task): each records one span on its own buffer.
  constexpr int kThreads = 3;
  std::set<int> tids;
  std::mutex mutex;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&tids, &mutex] {
        { const SpanTimer span("work"); }
        const int tid = Tracer::global().thread_buffer().tid();
        const std::lock_guard<std::mutex> lock(mutex);
        tids.insert(tid);
      });
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  // The buffers outlive the joined threads: every span is exported.
  EXPECT_EQ(Tracer::global().span_count(),
            static_cast<std::size_t>(kThreads));
  const std::string json = Tracer::global().to_chrome_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
}

TEST_F(ObsTrace, FullBufferDropsInsteadOfGrowing) {
  auto& buffer = Tracer::global().thread_buffer();
  for (std::size_t i = 0; i < detail::ThreadBuffer::kCapacity + 10; ++i)
    buffer.record(TraceEvent{"flood", 0, 1});
  EXPECT_EQ(buffer.drain_copy().size(), detail::ThreadBuffer::kCapacity);
  EXPECT_EQ(buffer.dropped(), 10u);
}

}  // namespace
}  // namespace sunchase::obs
