#include "sunchase/obs/metrics.h"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "json_check.h"
#include "sunchase/common/error.h"
#include "sunchase/common/thread_pool.h"

namespace sunchase::obs {
namespace {

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, LastWriteWins) {
  Gauge g;
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(ObsGauge, ConcurrentAddDeltasNeverLoseUpdates) {
  // add() must be a single fetch_add: racing +1/-1 pairs (the serve
  // in-flight gauge pattern) end balanced at exactly zero.
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPairs = 2000;
  std::vector<std::future<void>> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.push_back(std::async(std::launch::async, [&g] {
      for (int i = 0; i < kPairs; ++i) {
        g.add(1.0);
        g.add(-1.0);
      }
    }));
  }
  for (auto& w : workers) w.get();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, RejectsBadBoundaries) {
  EXPECT_THROW(Histogram{std::vector<double>{}}, InvalidArgument);
  EXPECT_THROW((Histogram{std::vector<double>{1.0, 1.0}}), InvalidArgument);
  EXPECT_THROW((Histogram{std::vector<double>{2.0, 1.0}}), InvalidArgument);
}

TEST(ObsHistogram, BucketsCountSumMinMax) {
  Histogram h({1.0, 10.0, 100.0});
  for (const double v : {0.5, 1.0, 5.0, 50.0, 500.0}) h.observe(v);
  const HistogramSnapshot snap = h.snapshot();
  // Prometheus-style le (<=) bucketing: 1.0 lands in the first bucket.
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);  // +Inf overflow
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 556.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);
}

TEST(ObsHistogram, EmptySnapshotIsAllZero) {
  Histogram h({1.0});
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
}

TEST(ObsHistogram, QuantilesInterpolateAndClampToObservedRange) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i % 30) + 1.0);
  const HistogramSnapshot snap = h.snapshot();
  const double p50 = snap.quantile(0.5);
  const double p95 = snap.quantile(0.95);
  EXPECT_GE(p50, snap.min);
  EXPECT_LE(p50, snap.max);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, snap.max);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), snap.max);
}

TEST(ObsHistogram, QuantileExactOnSingleBucketEdges) {
  Histogram h({1.0, 2.0, 3.0});
  h.observe(2.5);  // one observation: every quantile is that value
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 2.5);
}

TEST(ObsRegistry, FindsOrCreatesAndKeepsHandlesStable) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(reg.snapshot().counters.at("x.count"), 7u);
}

TEST(ObsRegistry, RejectsKindCollisionsAndBoundaryMismatch) {
  Registry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), InvalidArgument);
  EXPECT_THROW(reg.histogram("name"), InvalidArgument);
  reg.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), InvalidArgument);
}

TEST(ObsRegistry, ResetValuesKeepsRegistrations) {
  Registry reg;
  Counter& c = reg.counter("c");
  reg.gauge("g").set(5.0);
  reg.histogram("h", {1.0}).observe(0.5);
  c.add(3);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.gauges.at("g"), 0.0);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(ObsRegistry, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(ObsRegistry, SnapshotRendersValidJson) {
  Registry reg;
  reg.counter("mlc.labels_created").add(12);
  reg.gauge("batch.throughput_qps").set(123.456);
  reg.histogram("lat", {0.001, 0.1}).observe(0.05);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
  EXPECT_NE(json.find("\"mlc.labels_created\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  // The indent variant must stay valid JSON too (it is embedded in
  // BENCH_batch.json and --metrics-out reports).
  EXPECT_TRUE(test::json_parses(reg.snapshot().to_json(4)));
}

TEST(ObsRegistry, PrometheusExposition) {
  Registry reg;
  reg.counter("mlc.labels_created").add(3);
  reg.gauge("batch.throughput_qps").set(9.5);
  Histogram& h = reg.histogram("mlc.query_latency_seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = reg.snapshot().to_prometheus();
  // Dotted registry names become underscore Prometheus names.
  EXPECT_NE(text.find("# TYPE mlc_labels_created counter"),
            std::string::npos);
  EXPECT_NE(text.find("mlc_labels_created 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE batch_throughput_qps gauge"),
            std::string::npos);
  // Histogram buckets are cumulative and end at +Inf == count.
  EXPECT_NE(text.find("mlc_query_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("mlc_query_latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("mlc_query_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("mlc_query_latency_seconds_count 3"),
            std::string::npos);
}

TEST(ObsLabels, SeriesKeySortsKeysAndEscapesValues) {
  // Key order in the input must not matter: identity sorts by key.
  EXPECT_EQ(series_key("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=\"1\",b=\"2\"}");
  EXPECT_EQ(series_key("m", {{"a", "1"}, {"b", "2"}}),
            "m{a=\"1\",b=\"2\"}");
  EXPECT_EQ(series_key("m", {}), "m");
  // Exposition-format escaping: backslash, quote, newline.
  EXPECT_EQ(series_key("m", {{"k", "a\"b\\c\nd"}}),
            "m{k=\"a\\\"b\\\\c\\nd\"}");
  // Label keys are sanitized to the Prometheus charset.
  EXPECT_EQ(series_key("m", {{"bad-key", "v"}}), "m{bad_key=\"v\"}");

  EXPECT_THROW(series_key("", {}), InvalidArgument);
  EXPECT_THROW(series_key("m", {{"", "v"}}), InvalidArgument);
  EXPECT_THROW(series_key("m", {{"a", "1"}, {"a", "2"}}), InvalidArgument);
}

TEST(ObsLabels, LabeledSeriesAreIndependentOfEachOtherAndTheBareName) {
  Registry reg;
  Counter& bare = reg.counter("serve.requests");
  Counter& plan = reg.counter("serve.requests", {{"endpoint", "/plan"}});
  Counter& batch = reg.counter("serve.requests", {{"endpoint", "/batch"}});
  EXPECT_NE(&bare, &plan);
  EXPECT_NE(&plan, &batch);
  // Same labels in any order resolve to the same series.
  Counter& a = reg.counter("x", {{"k1", "v"}, {"k2", "w"}});
  Counter& b = reg.counter("x", {{"k2", "w"}, {"k1", "v"}});
  EXPECT_EQ(&a, &b);

  bare.add(1);
  plan.add(2);
  batch.add(3);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("serve.requests"), 1u);
  EXPECT_EQ(snap.counters.at("serve.requests{endpoint=\"/plan\"}"), 2u);
  EXPECT_EQ(snap.counters.at("serve.requests{endpoint=\"/batch\"}"), 3u);
}

TEST(ObsLabels, KindCollisionAcrossLabeledSeriesThrows) {
  Registry reg;
  reg.counter("m", {{"a", "1"}});
  EXPECT_THROW(reg.gauge("m", {{"b", "2"}}), InvalidArgument);
  EXPECT_THROW(reg.histogram("m", {{"c", "3"}}, {0.5}), InvalidArgument);
  // Histogram boundary agreement is enforced per family across series.
  reg.histogram("h", {{"a", "1"}}, {0.5, 1.0});
  EXPECT_THROW(reg.histogram("h", {{"a", "2"}}, {0.25}), InvalidArgument);
}

TEST(ObsLabels, PrometheusRendersLabeledSeriesGroupedPerFamily) {
  Registry reg;
  reg.describe("serve.requests", "HTTP requests by endpoint and status");
  reg.counter("serve.requests").add(6);
  reg.counter("serve.requests",
              {{"endpoint", "/plan"}, {"status", "200"}})
      .add(4);
  reg.counter("serve.requests",
              {{"endpoint", "/batch"}, {"status", "200"}})
      .add(2);
  // A second family whose name sorts between the bare and labeled
  // series keys — grouping must keep each family contiguous anyway.
  reg.counter("serve.requestz").add(1);

  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("# HELP serve_requests HTTP requests by endpoint "
                      "and status"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_requests 6"), std::string::npos);
  EXPECT_NE(
      text.find("serve_requests{endpoint=\"/plan\",status=\"200\"} 4"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("serve_requests{endpoint=\"/batch\",status=\"200\"} 2"),
      std::string::npos);

  // # TYPE appears exactly once per family, before all its series.
  std::size_t type_count = 0;
  for (std::size_t pos = text.find("# TYPE serve_requests counter");
       pos != std::string::npos;
       pos = text.find("# TYPE serve_requests counter", pos + 1))
    ++type_count;
  EXPECT_EQ(type_count, 1u);
  // Every series of the family renders after its one TYPE line.
  EXPECT_LT(text.find("# TYPE serve_requests counter"),
            text.find("serve_requests{endpoint=\"/batch\""));
  EXPECT_LT(text.find("# TYPE serve_requests counter"),
            text.find("serve_requests 6"));
}

TEST(ObsLabels, PrometheusEscapesLabelValues) {
  Registry reg;
  reg.counter("m", {{"path", "a\\b\"c\nd"}}).add(1);
  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("m{path=\"a\\\\b\\\"c\\nd\"} 1"), std::string::npos)
      << text;
}

TEST(ObsLabels, HistogramMergesLeAfterUserLabels) {
  Registry reg;
  Histogram& h =
      reg.histogram("serve.latency_seconds", {{"endpoint", "/plan"}},
                    {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("serve_latency_seconds_bucket{endpoint=\"/plan\","
                      "le=\"0.1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_latency_seconds_bucket{endpoint=\"/plan\","
                      "le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_seconds_sum{endpoint=\"/plan\"}"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_seconds_count{endpoint=\"/plan\"} 3"),
            std::string::npos);
}

TEST(ObsLabels, SnapshotJsonStaysValidWithLabeledKeys) {
  Registry reg;
  reg.counter("m", {{"k", "quote\"and\\slash"}}).add(1);
  reg.histogram("h", {{"endpoint", "/plan"}}, {0.5}).observe(0.1);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
  EXPECT_TRUE(test::json_parses(reg.snapshot().to_json(2)));
}

TEST(ObsLabels, CardinalityCapClampsToOverflowSeries) {
  Registry reg;
  std::vector<Counter*> first;
  for (std::size_t i = 0; i < Registry::kMaxSeriesPerFamily; ++i)
    first.push_back(
        &reg.counter("hot", {{"id", std::to_string(i)}}));

  // Past the cap every new label set lands on ONE shared overflow
  // series, and each clamp is itself counted.
  Counter& overflow_a =
      reg.counter("hot", {{"id", "way-too-many"}});
  Counter& overflow_b =
      reg.counter("hot", {{"id", "still-too-many"}});
  EXPECT_EQ(&overflow_a, &overflow_b);
  for (Counter* c : first) EXPECT_NE(c, &overflow_a);
  // Existing series stay reachable after the cap.
  EXPECT_EQ(&reg.counter("hot", {{"id", "3"}}), first[3]);

  overflow_a.add(5);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("hot{overflow=\"true\"}"), 5u);
  EXPECT_GE(snap.counters.at("obs.metrics.series_overflow"), 2u);
}

// The concurrency contract: relaxed atomic updates from many pool
// workers must lose nothing. Exact totals, no epsilon.
TEST(ObsConcurrency, CounterHammeredFromThreadPoolIsExact) {
  Registry reg;
  Counter& c = reg.counter("hammer");
  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 100'000;
  common::ThreadPool pool(kWorkers);
  std::vector<std::future<void>> futures;
  for (int w = 0; w < kWorkers; ++w)
    futures.push_back(pool.submit([&c] {
      for (int i = 0; i < kPerWorker; ++i) c.add();
    }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kWorkers) * kPerWorker);
}

TEST(ObsConcurrency, HistogramHammeredFromThreadPoolIsExact) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {1.0, 2.0, 3.0});
  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 50'000;
  common::ThreadPool pool(kWorkers);
  std::vector<std::future<void>> futures;
  for (int w = 0; w < kWorkers; ++w)
    futures.push_back(pool.submit([&h, w] {
      for (int i = 0; i < kPerWorker; ++i)
        h.observe(static_cast<double>(w));  // worker w -> bucket of value w
    }));
  for (auto& f : futures) f.get();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kWorkers) * kPerWorker);
  // Values 0,1 land in le=1; 2 in le=2; 3 in le=3; nothing beyond.
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u * kPerWorker);
  EXPECT_EQ(snap.buckets[1], 1u * kPerWorker);
  EXPECT_EQ(snap.buckets[2], 1u * kPerWorker);
  EXPECT_EQ(snap.buckets[3], 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  // Sum of integer-valued observations is exact in double arithmetic.
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kPerWorker) * (0 + 1 + 2 + 3));
}

TEST(ObsConcurrency, RegistrationRacesResolveToOneMetric) {
  Registry reg;
  constexpr int kWorkers = 4;
  common::ThreadPool pool(kWorkers);
  std::vector<std::future<Counter*>> futures;
  for (int w = 0; w < kWorkers; ++w)
    futures.push_back(
        pool.submit([&reg] { return &reg.counter("same.name"); }));
  Counter* first = futures[0].get();
  for (std::size_t i = 1; i < futures.size(); ++i)
    EXPECT_EQ(futures[i].get(), first);
}

}  // namespace
}  // namespace sunchase::obs
