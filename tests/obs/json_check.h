// A minimal recursive-descent JSON syntax checker for the obs tests:
// the exported metrics/trace documents must parse as JSON without
// pulling a parser dependency into the repo. Validates syntax only
// (objects, arrays, strings, numbers, literals), not schemas.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace sunchase::test {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  [[nodiscard]] bool valid() {
    pos_ = 0;
    const bool ok = value();
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) == 0) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  bool string() {
    if (!consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // skip the escaped character
      ++pos_;
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      bool exp_digits = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return false;
    }
    return digits && pos_ > start;
  }

  bool object() {
    if (!consume('{')) return false;
    if (consume('}')) return true;
    do {
      skip_ws();
      if (!string()) return false;
      if (!consume(':')) return false;
      if (!value()) return false;
    } while (consume(','));
    return consume('}');
  }

  bool array() {
    if (!consume('[')) return false;
    if (consume(']')) return true;
    do {
      if (!value()) return false;
    } while (consume(','));
    return consume(']');
  }

  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] inline bool json_parses(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace sunchase::test
