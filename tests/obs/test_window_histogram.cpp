#include "sunchase/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "json_check.h"
#include "sunchase/common/error.h"
#include "sunchase/common/thread_pool.h"

namespace sunchase::obs {
namespace {

/// A clock the test advances by hand: rotation happens exactly when we
/// say, never because the wall moved.
struct FakeClock {
  double now = 0.0;
  std::function<double()> fn() {
    return [this] { return now; };
  }
};

TEST(ObsWindowHistogram, RejectsBadWindowAndBounds) {
  EXPECT_THROW(WindowedHistogram({1.0}, 0.0), InvalidArgument);
  EXPECT_THROW(WindowedHistogram({1.0}, -3.0), InvalidArgument);
  EXPECT_THROW(WindowedHistogram({2.0, 1.0}, 60.0), InvalidArgument);
}

TEST(ObsWindowHistogram, EmptyWindowQuantileIsZeroNotNaN) {
  // Documented policy: an empty window reads as count 0 / quantile 0.0
  // (never NaN), so dashboards render a flat zero instead of a gap.
  FakeClock clock;
  const WindowedHistogram w({0.1, 1.0}, 60.0, clock.fn());
  const HistogramSnapshot snap = w.window_snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile(0.99), 0.0);
  EXPECT_FALSE(std::isnan(snap.quantile(0.5)));
}

TEST(ObsWindowHistogram, WindowEqualsCumulativeWhenWindowCoversUptime) {
  FakeClock clock;
  WindowedHistogram w({0.1, 1.0, 10.0}, 60.0, clock.fn());
  // 30 s of observations — well inside one 60 s window.
  for (int i = 0; i < 30; ++i) {
    w.observe(0.05 + 0.03 * i);
    clock.now += 1.0;
  }
  const HistogramSnapshot cumulative = w.snapshot();
  const HistogramSnapshot window = w.window_snapshot();
  EXPECT_EQ(window.count, cumulative.count);
  EXPECT_DOUBLE_EQ(window.sum, cumulative.sum);
  EXPECT_EQ(window.buckets, cumulative.buckets);
  EXPECT_DOUBLE_EQ(window.quantile(0.5), cumulative.quantile(0.5));
}

TEST(ObsWindowHistogram, OldObservationsExpireOutOfTheWindow) {
  FakeClock clock;
  WindowedHistogram w({1.0}, 60.0, clock.fn());
  w.observe(0.5);  // lands in the epoch-0 slice
  clock.now = 30.0;
  w.observe(0.5);  // a later slice
  EXPECT_EQ(w.window_snapshot().count, 2u);
  // Jump past the window: both slices are now older than 60 s.
  clock.now = 200.0;
  EXPECT_EQ(w.window_snapshot().count, 0u);
  EXPECT_EQ(w.snapshot().count, 2u);  // cumulative never forgets
  // A fresh observation is alone in the new window.
  w.observe(0.5);
  EXPECT_EQ(w.window_snapshot().count, 1u);
}

TEST(ObsWindowHistogram, SliceRingReusesSlotsAcrossmanyRotations) {
  FakeClock clock;
  WindowedHistogram w({1.0}, 60.0, clock.fn());
  // 40 slice periods (10 s each) of one observation per period: the
  // 6-slot ring must recycle without double-counting. The effective
  // window keeps the last 5-6 slices.
  for (int i = 0; i < 40; ++i) {
    w.observe(0.5);
    clock.now += 10.0;
  }
  const std::uint64_t window_count = w.window_snapshot().count;
  EXPECT_GE(window_count, 5u);
  EXPECT_LE(window_count, 6u);
  EXPECT_EQ(w.snapshot().count, 40u);
}

TEST(ObsWindowHistogram, ResetClearsBothViews) {
  FakeClock clock;
  WindowedHistogram w({1.0}, 60.0, clock.fn());
  w.observe(0.5);
  w.reset();
  EXPECT_EQ(w.snapshot().count, 0u);
  EXPECT_EQ(w.window_snapshot().count, 0u);
}

TEST(ObsWindowHistogram, ConcurrentObserveDuringRotationLosesNothing) {
  // The fake clock advances mid-flight from a dedicated thread while
  // workers hammer observe(): every observation must land exactly once
  // in the cumulative view, and the window view must never exceed it.
  std::atomic<double> now{0.0};
  WindowedHistogram w(latency_bounds(), 60.0,
                      [&now] { return now.load(); });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  {
    common::ThreadPool pool(kThreads + 1);
    std::vector<std::future<void>> futures;
    futures.push_back(pool.submit([&now] {
      for (int i = 0; i < 120; ++i) {
        now.store(static_cast<double>(i));
        std::this_thread::yield();
      }
    }));
    for (int t = 0; t < kThreads; ++t)
      futures.push_back(pool.submit([&w] {
        for (int i = 0; i < kPerThread; ++i)
          w.observe(0.001 * static_cast<double>(i % 100));
      }));
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(w.snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_LE(w.window_snapshot().count, w.snapshot().count);
}

TEST(ObsWindowHistogram, RegistrySnapshotEmitsWindowSibling) {
  Registry reg;
  WindowedHistogram& w = reg.windowed_histogram(
      "rpc.latency_seconds", {{"endpoint", "/plan"}}, {0.1, 1.0});
  w.observe(0.05);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.count("rpc.latency_seconds{endpoint=\"/plan\"}"),
            1u);
  ASSERT_EQ(
      snap.histograms.count("rpc.latency_seconds.window{endpoint=\"/plan\"}"),
      1u);
  EXPECT_EQ(
      snap.histograms.at("rpc.latency_seconds.window{endpoint=\"/plan\"}")
          .count,
      1u);
  EXPECT_TRUE(test::json_parses(snap.to_json())) << snap.to_json();
}

TEST(ObsWindowHistogram, PrometheusRendersBothFamilies) {
  Registry reg;
  reg.windowed_histogram("rpc.latency_seconds", {{"endpoint", "/plan"}},
                         {0.1, 1.0})
      .observe(0.05);
  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE rpc_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rpc_latency_seconds_window histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "rpc_latency_seconds_window_bucket{endpoint=\"/plan\",le=\"0.1\"}"),
      std::string::npos);
}

TEST(ObsWindowHistogram, RegistryRejectsCrossKindAndMismatchedRegistration) {
  Registry reg;
  reg.windowed_histogram("w.latency", {{"a", "1"}}, {1.0});
  // Same series as a plain histogram: refused both ways.
  EXPECT_THROW(reg.histogram("w.latency", Labels{{"a", "1"}}, {1.0}),
               InvalidArgument);
  reg.histogram("p.latency", Labels{{"a", "1"}}, {1.0});
  EXPECT_THROW(reg.windowed_histogram("p.latency", {{"a", "1"}}, {1.0}),
               InvalidArgument);
  // Family-level checks: bounds and window must agree across series.
  EXPECT_THROW(reg.windowed_histogram("w.latency", {{"a", "2"}}, {2.0}),
               InvalidArgument);
  EXPECT_THROW(
      reg.windowed_histogram("w.latency", {{"a", "3"}}, {1.0}, 30.0),
      InvalidArgument);
  EXPECT_NO_THROW(reg.windowed_histogram("w.latency", {{"a", "4"}}, {1.0}));
  // The reserved ".window" sibling name cannot be claimed by anyone.
  EXPECT_THROW(reg.counter("w.latency.window"), InvalidArgument);
}

TEST(ObsWindowHistogram, JsonSnapshotCarriesQuantileConvenienceFields) {
  Registry reg;
  Histogram& h = reg.histogram("plain.seconds", {0.1, 1.0});
  for (int i = 0; i < 100; ++i) h.observe(0.05);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(ObsWindowHistogram, ResetValuesClearsWindowedSeries) {
  Registry reg;
  WindowedHistogram& w =
      reg.windowed_histogram("r.seconds", {{"k", "v"}}, {1.0});
  w.observe(0.5);
  reg.reset_values();
  EXPECT_EQ(w.snapshot().count, 0u);
  EXPECT_EQ(w.window_snapshot().count, 0u);
}

}  // namespace
}  // namespace sunchase::obs
