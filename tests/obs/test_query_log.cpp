// QueryLog: the JSONL sink must hold up under concurrent planner
// workers — exactly one unbroken, parseable line per record — and its
// slow-query threshold must count (and only count) the slow ones.
#include "sunchase/obs/query_log.h"

#include <gtest/gtest.h>

#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_check.h"
#include "sunchase/common/error.h"
#include "sunchase/common/thread_pool.h"

namespace sunchase::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

QueryRecord sample_record(std::int64_t index) {
  QueryRecord record;
  record.mode = "batch";
  record.index = index;
  record.origin = 3;
  record.destination = 42;
  record.departure = "10:00:00";
  record.mlc_seconds = 0.012;
  record.total_seconds = 0.015;
  record.labels_created = 100;
  record.pareto_size = 4;
  record.candidate_count = 2;
  record.travel_time_s = 310.5;
  record.energy_in_wh = 1.25;
  record.energy_out_wh = 20.75;
  return record;
}

TEST(QueryLogTest, WritesOneParseableLinePerRecord) {
  std::ostringstream sink;
  QueryLog log(sink);
  log.write(sample_record(0));
  log.write(sample_record(1));

  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(test::json_parses(line)) << line;
    EXPECT_NE(line.find("\"mode\":\"batch\""), std::string::npos);
    EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  }
  EXPECT_EQ(log.record_count(), 2u);
}

TEST(QueryLogTest, HammeredByAThreadPoolNeverInterleavesLines) {
  constexpr int kWorkers = 8;
  constexpr int kRecordsPerWorker = 50;
  std::ostringstream sink;
  QueryLog log(sink);
  {
    common::ThreadPool pool(kWorkers);
    std::vector<std::future<void>> futures;
    for (int w = 0; w < kWorkers; ++w) {
      futures.push_back(pool.submit([&log, w] {
        for (int r = 0; r < kRecordsPerWorker; ++r)
          log.write(sample_record(w * kRecordsPerWorker + r));
      }));
    }
    for (auto& f : futures) f.get();
  }

  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kWorkers * kRecordsPerWorker));
  EXPECT_EQ(log.record_count(),
            static_cast<std::uint64_t>(kWorkers * kRecordsPerWorker));

  // Every line parses on its own, and every record index appears exactly
  // once — a torn or interleaved write would break one or the other.
  std::set<std::string> indices;
  for (const std::string& line : lines) {
    ASSERT_TRUE(test::json_parses(line)) << line;
    const auto at = line.find("\"index\":");
    ASSERT_NE(at, std::string::npos) << line;
    const auto start = at + 8;
    indices.insert(line.substr(start, line.find(',', start) - start));
  }
  EXPECT_EQ(indices.size(),
            static_cast<std::size_t>(kWorkers * kRecordsPerWorker));
}

TEST(QueryLogTest, CountsQueriesAboveTheSlowThreshold) {
  std::ostringstream sink;
  QueryLog log(sink);
  log.set_slow_threshold(Seconds{0.5});
  EXPECT_DOUBLE_EQ(log.slow_threshold().value(), 0.5);

  QueryRecord fast = sample_record(0);
  fast.total_seconds = 0.1;
  QueryRecord slow = sample_record(1);
  slow.total_seconds = 2.0;
  log.write(fast);
  log.write(slow);
  log.write(slow);

  EXPECT_EQ(log.record_count(), 3u);
  EXPECT_EQ(log.slow_count(), 2u);
}

TEST(QueryLogTest, ZeroThresholdDisablesSlowCounting) {
  std::ostringstream sink;
  QueryLog log(sink);
  QueryRecord record = sample_record(0);
  record.total_seconds = 1e6;
  log.write(record);
  EXPECT_EQ(log.slow_count(), 0u);
}

TEST(QueryLogTest, ErrorRecordsCarryTheMessageAndSkipTheSummary) {
  std::ostringstream sink;
  QueryLog log(sink);
  QueryRecord record = sample_record(0);
  record.status = "error";
  record.error = "unreachable destination";
  log.write(record);

  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(test::json_parses(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(lines[0].find("unreachable destination"), std::string::npos);
  EXPECT_EQ(lines[0].find("travel_time_s"), std::string::npos);
}

TEST(QueryLogTest, EscapesHostileStringsIntoValidJson) {
  std::ostringstream sink;
  QueryLog log(sink);
  QueryRecord record = sample_record(0);
  record.status = "error";
  record.error = "bad \"query\"\nwith \\ and\ttabs";
  log.write(record);

  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 1u);  // the embedded newline must be escaped
  EXPECT_TRUE(test::json_parses(lines[0])) << lines[0];
}

TEST(QueryLogTest, FileConstructorThrowsOnUnwritablePath) {
  EXPECT_THROW(QueryLog("/nonexistent-dir/sub/query.jsonl"), IoError);
}

TEST(QueryLogTest, FileConstructorWritesJsonlToDisk) {
  const std::string path =
      testing::TempDir() + "/sunchase_query_log_test.jsonl";
  {
    QueryLog log(path);
    log.write(sample_record(7));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(test::json_parses(line)) << line;
  EXPECT_FALSE(std::getline(in, line));
}

}  // namespace
}  // namespace sunchase::obs
