#include "sunchase/obs/trace_context.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sunchase/obs/metrics.h"
#include "sunchase/obs/trace.h"

namespace sunchase::obs {
namespace {

TEST(TraceContextParse, RoundTripsThroughTraceparent) {
  TraceContext context;
  context.trace_hi = 0x0123456789abcdefull;
  context.trace_lo = 0xfedcba9876543210ull;
  context.span_id = 0x00000000000000a1ull;

  const std::string header = context.to_traceparent();
  EXPECT_EQ(header,
            "00-0123456789abcdeffedcba9876543210-00000000000000a1-01");

  const auto parsed = TraceContext::from_traceparent(header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_hi, context.trace_hi);
  EXPECT_EQ(parsed->trace_lo, context.trace_lo);
  EXPECT_EQ(parsed->span_id, context.span_id);
}

TEST(TraceContextParse, AcceptsUppercaseHex) {
  const auto parsed = TraceContext::from_traceparent(
      "00-0123456789ABCDEFFEDCBA9876543210-00000000000000A1-01");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_hi, 0x0123456789abcdefull);
  EXPECT_EQ(parsed->span_id, 0xa1ull);
}

TEST(TraceContextParse, RejectsMalformedHeaders) {
  const std::vector<std::string> bad = {
      "",
      "00",
      // wrong length (54 and 56 bytes)
      "00-0123456789abcdeffedcba987654321-00000000000000a1-01",
      "00-0123456789abcdeffedcba98765432100-00000000000000a1-01",
      // unsupported version
      "01-0123456789abcdeffedcba9876543210-00000000000000a1-01",
      "ff-0123456789abcdeffedcba9876543210-00000000000000a1-01",
      // dashes in the wrong place
      "00+0123456789abcdeffedcba9876543210-00000000000000a1-01",
      "00-0123456789abcdeffedcba9876543210+00000000000000a1-01",
      "00-0123456789abcdeffedcba9876543210-00000000000000a1+01",
      // non-hex bytes in each field
      "00-0123456789abcdegfedcba9876543210-00000000000000a1-01",
      "00-0123456789abcdeffedcba9876543210-0000000000000zzz-01",
      "00-0123456789abcdeffedcba9876543210-00000000000000a1-0x",
      // all-zero trace id / parent id are invalid per W3C
      "00-00000000000000000000000000000000-00000000000000a1-01",
      "00-0123456789abcdeffedcba9876543210-0000000000000000-01",
  };
  for (const std::string& header : bad)
    EXPECT_FALSE(TraceContext::from_traceparent(header).has_value())
        << "accepted: " << header;
}

TEST(TraceContextParse, HexRenderingIsZeroPadded) {
  TraceContext context;
  context.trace_hi = 0x1;
  context.trace_lo = 0x2;
  context.span_id = 0x3;
  EXPECT_EQ(context.trace_id_hex(),
            "00000000000000010000000000000002");
  EXPECT_EQ(context.span_id_hex(), "0000000000000003");
}

TEST(TraceContextGenerate, ProducesValidDistinctContexts) {
  std::set<std::string> trace_ids;
  for (int i = 0; i < 64; ++i) {
    const TraceContext context = TraceContext::generate();
    EXPECT_TRUE(context.valid());
    EXPECT_NE(context.span_id, 0u);
    trace_ids.insert(context.trace_id_hex());
    // generate() must round-trip through its own wire format.
    const auto parsed =
        TraceContext::from_traceparent(context.to_traceparent());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->trace_id_hex(), context.trace_id_hex());
  }
  EXPECT_EQ(trace_ids.size(), 64u);
}

TEST(TraceContextGenerate, SpanIdsAreNonZeroAndMostlyUnique) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = random_span_id();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(TraceContextScope, InstallsAndRestoresThreadContext) {
  EXPECT_FALSE(current_trace().valid());  // fresh thread: no context

  const TraceContext outer = TraceContext::generate();
  {
    const TraceScope scope(outer);
    EXPECT_EQ(current_trace().trace_id_hex(), outer.trace_id_hex());
    EXPECT_EQ(current_trace().span_id, outer.span_id);

    const TraceContext inner = TraceContext::generate();
    {
      const TraceScope nested(inner);
      EXPECT_EQ(current_trace().trace_id_hex(), inner.trace_id_hex());
    }
    EXPECT_EQ(current_trace().trace_id_hex(), outer.trace_id_hex());
  }
  EXPECT_FALSE(current_trace().valid());
}

TEST(TraceContextScope, PropagationWorksWithTracingDisabled) {
  // The trace-id echo and QueryLog stamping must not depend on span
  // recording: context install/propagation is independent of the
  // Tracer's enabled flag.
  ASSERT_FALSE(Tracer::global().enabled());
  const TraceContext context = TraceContext::generate();
  const TraceScope scope(context);
  { const SpanTimer span("not.recorded"); }
  EXPECT_EQ(current_trace().trace_id_hex(), context.trace_id_hex());

  std::string seen_on_worker;
  std::thread worker([&, context] {
    const TraceScope worker_scope(context);
    seen_on_worker = current_trace().trace_id_hex();
  });
  worker.join();
  EXPECT_EQ(seen_on_worker, context.trace_id_hex());
}

/// Span-parenting tests drive the global tracer; restore its state on
/// every exit path.
class TraceContextSpans : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }

  static std::vector<TraceEvent> all_events() {
    std::vector<TraceEvent> events;
    // drain via the documented export path: thread_buffer() only gives
    // the calling thread's buffer, so parse span_count via drain of the
    // current thread where the test recorded.
    for (const TraceEvent& e :
         Tracer::global().thread_buffer().drain_copy())
      events.push_back(e);
    return events;
  }

  static const TraceEvent* find(const std::vector<TraceEvent>& events,
                                const char* name) {
    for (const TraceEvent& e : events)
      if (std::string(e.name) == name) return &e;
    return nullptr;
  }
};

TEST_F(TraceContextSpans, SameThreadSpansParentByNesting) {
  const TraceContext request = TraceContext::generate();
  {
    const TraceScope scope(request);
    const SpanTimer outer("ctx.outer");
    { const SpanTimer inner("ctx.inner"); }
  }

  const std::vector<TraceEvent> events = all_events();
  const TraceEvent* outer = find(events, "ctx.outer");
  const TraceEvent* inner = find(events, "ctx.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  // Both spans carry the request's 128-bit trace id.
  EXPECT_EQ(outer->trace_hi, request.trace_hi);
  EXPECT_EQ(outer->trace_lo, request.trace_lo);
  EXPECT_EQ(inner->trace_hi, request.trace_hi);
  EXPECT_EQ(inner->trace_lo, request.trace_lo);

  // outer parents to the installed request context; inner to outer.
  EXPECT_EQ(outer->parent_id, request.span_id);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_NE(inner->span_id, outer->span_id);
}

TEST_F(TraceContextSpans, SpanTimerRestoresContextOnExit) {
  const TraceContext request = TraceContext::generate();
  const TraceScope scope(request);
  {
    const SpanTimer span("ctx.scoped");
    EXPECT_NE(current_trace().span_id, request.span_id);
    EXPECT_EQ(current_trace().trace_hi, request.trace_hi);
  }
  EXPECT_EQ(current_trace().span_id, request.span_id);
}

TEST_F(TraceContextSpans, WorkerThreadSpansParentAcrossThreads) {
  const TraceContext request = TraceContext::generate();
  TraceEvent worker_event{};
  std::thread worker([&, request] {
    const TraceScope scope(request);  // what ThreadPool tasks reinstall
    { const SpanTimer span("ctx.worker"); }
    const auto events = Tracer::global().thread_buffer().drain_copy();
    ASSERT_EQ(events.size(), 1u);
    worker_event = events[0];
  });
  worker.join();

  EXPECT_EQ(worker_event.trace_hi, request.trace_hi);
  EXPECT_EQ(worker_event.trace_lo, request.trace_lo);
  EXPECT_EQ(worker_event.parent_id, request.span_id);
  EXPECT_NE(worker_event.span_id, request.span_id);
}

TEST_F(TraceContextSpans, ExportCarriesIdsUnderArgs) {
  const TraceContext request = TraceContext::generate();
  {
    const TraceScope scope(request);
    const SpanTimer span("ctx.exported");
  }
  const std::string json = Tracer::global().to_chrome_json();
  EXPECT_NE(json.find("\"trace_id\": \"" + request.trace_id_hex() + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"parent_id\": \"" + request.span_id_hex() + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"span_id\": \""), std::string::npos) << json;
}

TEST_F(TraceContextSpans, SinceFilterKeepsOnlyNewSpans) {
  { const SpanTimer span("ctx.before"); }
  const std::uint64_t cut = Tracer::global().now_us() + 1;
  const std::string later = Tracer::global().to_chrome_json(cut);
  EXPECT_EQ(later.find("ctx.before"), std::string::npos) << later;
  // since=0 (the default) still exports everything.
  EXPECT_NE(Tracer::global().to_chrome_json().find("ctx.before"),
            std::string::npos);
}

TEST_F(TraceContextSpans, DroppedSpansFeedTheRegistryCounter) {
  const std::uint64_t before = obs::Registry::global()
                                   .counter("obs.trace.dropped_spans")
                                   .value();
  auto& buffer = Tracer::global().thread_buffer();
  for (std::size_t i = 0; i < detail::ThreadBuffer::kCapacity + 7; ++i)
    buffer.record(TraceEvent{"ctx.flood", 0, 1});
  EXPECT_EQ(buffer.dropped(), 7u);
  const std::uint64_t after = obs::Registry::global()
                                  .counter("obs.trace.dropped_spans")
                                  .value();
  EXPECT_GE(after - before, 7u);
}

}  // namespace
}  // namespace sunchase::obs
