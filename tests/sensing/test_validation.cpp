#include "sunchase/sensing/validation.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "sunchase/roadnet/traffic.h"
#include "test_helpers.h"

namespace sunchase::sensing {
namespace {

class ValidationTest : public ::testing::Test {
 protected:
  ValidationTest() : scene_(sq_.proj, 5.0), traffic_(kmh(15.0)) {
    scene_.add_building(
        shadow::Building{geo::rectangle({30, -40}, {60, -10}), 40.0});
    scene_.add_building(
        shadow::Building{geo::rectangle({110, 20}, {140, 60}), 55.0});
    path_.edges = {sq_.graph.find_edge(0, 1), sq_.graph.find_edge(1, 3)};
    profile_ = std::make_unique<shadow::ShadingProfile>(
        shadow::ShadingProfile::compute_exact(
            sq_.graph, scene_, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
            TimeOfDay::hms(18, 0)));
  }

  test::SquareGraph sq_;
  shadow::Scene scene_;
  roadnet::UniformTraffic traffic_;
  roadnet::Path path_;
  std::unique_ptr<shadow::ShadingProfile> profile_;
};

TEST_F(ValidationTest, DetectorSeparatesSunFromShade) {
  const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                      TimeOfDay::hms(13, 0), DriveOptions{});
  const std::vector<bool> detected = detect_illumination(log, 0.45);
  ASSERT_EQ(detected.size(), log.samples.size());
  int agree = 0;
  for (std::size_t i = 0; i < detected.size(); ++i)
    if (detected[i] == !log.samples[i].truly_shaded) ++agree;
  // Dual-phone averaging should classify nearly every sample right.
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(detected.size()),
            0.93);
}

TEST_F(ValidationTest, DetectorRejectsBadThreshold) {
  const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                      TimeOfDay::hms(13, 0), DriveOptions{});
  EXPECT_THROW((void)detect_illumination(log, 0.0), InvalidArgument);
  EXPECT_THROW((void)detect_illumination(log, 1.0), InvalidArgument);
}

TEST_F(ValidationTest, MeasuredSolarDistanceMismatchedSizesThrow) {
  const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                      TimeOfDay::hms(13, 0), DriveOptions{});
  EXPECT_THROW((void)measured_solar_distance(sq_.graph, scene_, path_, log,
                                             {true, false}),
               InvalidArgument);
}

TEST_F(ValidationTest, RowAgreesWithModelWithinTablePrecision) {
  ValidationOptions opt;
  const PathValidation row = validate_path(
      sq_.graph, scene_, *profile_, traffic_, path_, TimeOfDay::hms(13, 0),
      opt);
  // RSD vs MSD: the paper reports agreement within a few percent of
  // path length (GPS error + 15-min quantization remain).
  EXPECT_GT(row.model_solar_distance.value(), 0.0);
  EXPECT_NEAR(row.real_solar_distance.value(),
              row.model_solar_distance.value(), 35.0);
  // Solar time likewise.
  EXPECT_NEAR(row.real_solar_time.value(), row.model_solar_time.value(),
              10.0);
  // Drivers beat the predicted traffic speed (paper's observation).
  EXPECT_LT(row.real_total_time.value(), row.model_total_time.value());
  EXPECT_NEAR(to_kmh(row.traffic_speed), 15.0, 0.2);
}

TEST_F(ValidationTest, EmptyPathAndBadRunsRejected) {
  ValidationOptions opt;
  EXPECT_THROW((void)validate_path(sq_.graph, scene_, *profile_, traffic_,
                                   roadnet::Path{}, TimeOfDay::hms(13, 0),
                                   opt),
               InvalidArgument);
  opt.runs = 0;
  EXPECT_THROW((void)validate_path(sq_.graph, scene_, *profile_, traffic_,
                                   path_, TimeOfDay::hms(13, 0), opt),
               InvalidArgument);
}

TEST_F(ValidationTest, MorningAndNoonDiffer) {
  ValidationOptions opt;
  const PathValidation morning = validate_path(
      sq_.graph, scene_, *profile_, traffic_, path_, TimeOfDay::hms(10, 0),
      opt);
  const PathValidation noon = validate_path(
      sq_.graph, scene_, *profile_, traffic_, path_, TimeOfDay::hms(13, 0),
      opt);
  // Shadows rotate; the modeled solar distance changes over the day.
  EXPECT_NE(morning.model_solar_distance.value(),
            noon.model_solar_distance.value());
}

TEST_F(ValidationTest, FullySunnyPathHasFullSolarDistance) {
  // Street 2->3 (y = 100) is out of reach of both towers at noon.
  roadnet::Path sunny;
  sunny.edges = {sq_.graph.find_edge(2, 3)};
  ValidationOptions opt;
  const PathValidation row = validate_path(
      sq_.graph, scene_, *profile_, traffic_, sunny, TimeOfDay::hms(13, 0),
      opt);
  const double len = sq_.graph.edge(sunny.edges[0]).length.value();
  EXPECT_NEAR(row.model_solar_distance.value(), len, 1.0);
  EXPECT_GT(row.real_solar_distance.value(), len * 0.85);
}

}  // namespace
}  // namespace sunchase::sensing
