#include "sunchase/sensing/drive.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "sunchase/roadnet/traffic.h"
#include "test_helpers.h"

namespace sunchase::sensing {
namespace {

class DriveTest : public ::testing::Test {
 protected:
  DriveTest() : scene_(sq_.proj, 5.0), traffic_(kmh(15.0)) {
    // Tower shading the middle of street 0->1 at noon.
    scene_.add_building(
        shadow::Building{geo::rectangle({30, -40}, {60, -10}), 40.0});
    path_.edges = {sq_.graph.find_edge(0, 1), sq_.graph.find_edge(1, 3)};
  }

  test::SquareGraph sq_;
  shadow::Scene scene_;
  roadnet::UniformTraffic traffic_;
  roadnet::Path path_;
};

TEST_F(DriveTest, EmptyPathRejected) {
  EXPECT_THROW((void)simulate_drive(sq_.graph, scene_, traffic_,
                                    roadnet::Path{}, TimeOfDay::hms(12, 0),
                                    DriveOptions{}),
               InvalidArgument);
}

TEST_F(DriveTest, SampleCountMatchesDriveDuration) {
  const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                      TimeOfDay::hms(12, 0), DriveOptions{});
  // ~200 m at ~15 km/h with driver factor ~1.07 -> ~45 s of driving.
  EXPECT_GT(log.total_time.value(), 30.0);
  EXPECT_LT(log.total_time.value(), 60.0);
  EXPECT_NEAR(static_cast<double>(log.samples.size()),
              log.total_time.value(), 3.0);
}

TEST_F(DriveTest, TimestampsAreMonotone) {
  const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                      TimeOfDay::hms(12, 0), DriveOptions{});
  for (std::size_t i = 1; i < log.samples.size(); ++i)
    EXPECT_GT(log.samples[i].when.seconds_since_midnight(),
              log.samples[i - 1].when.seconds_since_midnight());
}

TEST_F(DriveTest, TruePositionsLieOnThePath) {
  const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                      TimeOfDay::hms(12, 0), DriveOptions{});
  for (const DriveSample& s : log.samples) {
    double min_d = 1e18;
    for (const roadnet::EdgeId e : path_.edges)
      min_d = std::min(min_d,
                       geo::distance_to_segment(
                           s.true_position, scene_.edge_segment(sq_.graph, e)));
    EXPECT_LT(min_d, 0.5);
  }
}

TEST_F(DriveTest, DriverBeatsPredictedSpeedOnAverage) {
  // The paper observes real travel times below the model estimate.
  double predicted = 0.0;
  for (const roadnet::EdgeId e : path_.edges)
    predicted +=
        traffic_.travel_time(sq_.graph, e, TimeOfDay::hms(12, 0)).value();
  double measured_sum = 0.0;
  const int runs = 10;
  for (int i = 0; i < runs; ++i) {
    DriveOptions opt;
    opt.seed = 100 + static_cast<std::uint64_t>(i);
    measured_sum += simulate_drive(sq_.graph, scene_, traffic_, path_,
                                   TimeOfDay::hms(12, 0), opt)
                        .total_time.value();
  }
  EXPECT_LT(measured_sum / runs, predicted);
}

TEST_F(DriveTest, ShadedSamplesMatchGeometryAtNoon) {
  const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                      TimeOfDay::hms(13, 0), DriveOptions{});
  // The 40 m tower at y in [-40,-10] shades part of street y=0 at noon;
  // some but not all samples must be shaded.
  int shaded = 0;
  for (const DriveSample& s : log.samples)
    if (s.truly_shaded) ++shaded;
  EXPECT_GT(shaded, 0);
  EXPECT_LT(shaded, static_cast<int>(log.samples.size()));
}

TEST_F(DriveTest, ShadedSamplesReadDarker) {
  const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                      TimeOfDay::hms(13, 0), DriveOptions{});
  double shaded_avg = 0.0, lit_avg = 0.0;
  int shaded_n = 0, lit_n = 0;
  for (const DriveSample& s : log.samples) {
    const double avg = (s.lux_windshield + s.lux_sunroof) / 2.0;
    if (s.truly_shaded) {
      shaded_avg += avg;
      ++shaded_n;
    } else {
      lit_avg += avg;
      ++lit_n;
    }
  }
  ASSERT_GT(shaded_n, 0);
  ASSERT_GT(lit_n, 0);
  EXPECT_GT(lit_avg / lit_n, 2.0 * shaded_avg / shaded_n);
}

TEST_F(DriveTest, GpsFixesAreNearTruth) {
  const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                      TimeOfDay::hms(12, 0), DriveOptions{});
  for (const DriveSample& s : log.samples)
    EXPECT_LT(geo::distance(s.gps_position, s.true_position), 25.0);
}

TEST_F(DriveTest, DeterministicForSeed) {
  const DriveLog a = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                    TimeOfDay::hms(12, 0), DriveOptions{});
  const DriveLog b = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                    TimeOfDay::hms(12, 0), DriveOptions{});
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].lux_windshield, b.samples[i].lux_windshield);
    EXPECT_EQ(a.samples[i].gps_position, b.samples[i].gps_position);
  }
}

TEST_F(DriveTest, BadSamplePeriodRejected) {
  DriveOptions bad;
  bad.sample_period = Seconds{0.0};
  EXPECT_THROW((void)simulate_drive(sq_.graph, scene_, traffic_, path_,
                                    TimeOfDay::hms(12, 0), bad),
               InvalidArgument);
}

}  // namespace
}  // namespace sunchase::sensing
