// Failure injection: the validation platform under degraded sensors —
// glitch storms, a nearly-dead phone, heavy urban-canyon GPS noise.
// The dual-phone averaging and map-matching must degrade gracefully,
// not collapse (the paper's motivation for mounting two phones).
#include <gtest/gtest.h>

#include "sunchase/roadnet/traffic.h"
#include "sunchase/sensing/validation.h"
#include "test_helpers.h"

namespace sunchase::sensing {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() : scene_(sq_.proj, 5.0), traffic_(kmh(15.0)) {
    scene_.add_building(
        shadow::Building{geo::rectangle({30, -40}, {60, -10}), 40.0});
    path_.edges = {sq_.graph.find_edge(0, 1), sq_.graph.find_edge(1, 3)};
  }

  double detection_accuracy(const DriveOptions& options) {
    const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                        TimeOfDay::hms(13, 0), options);
    const std::vector<bool> detected = detect_illumination(log, 0.45);
    int agree = 0;
    for (std::size_t i = 0; i < detected.size(); ++i)
      if (detected[i] == !log.samples[i].truly_shaded) ++agree;
    return static_cast<double>(agree) /
           static_cast<double>(detected.size());
  }

  test::SquareGraph sq_;
  shadow::Scene scene_;
  roadnet::UniformTraffic traffic_;
  roadnet::Path path_;
};

TEST_F(FailureInjectionTest, GlitchStormDegradesGracefully) {
  DriveOptions stormy;
  stormy.windshield.glitch_probability = 0.30;
  stormy.sunroof.glitch_probability = 0.30;
  const double clean = detection_accuracy(DriveOptions{});
  const double stormy_acc = detection_accuracy(stormy);
  EXPECT_GT(clean, 0.9);
  // A 30% glitch rate on BOTH phones still leaves usable detection.
  EXPECT_GT(stormy_acc, 0.6);
  EXPECT_LE(stormy_acc, clean + 0.05);
}

TEST_F(FailureInjectionTest, NearlyDeadPhoneIsCoveredByTheOther) {
  // Windshield phone barely transmits; the sunroof phone carries the
  // average and the adaptive threshold still separates sun from shade.
  DriveOptions one_dead;
  one_dead.windshield.mount_attenuation = 0.02;
  one_dead.windshield.noise_rel_std = 0.5;
  EXPECT_GT(detection_accuracy(one_dead), 0.85);
}

TEST_F(FailureInjectionTest, HeavyGpsNoiseKeepsDistanceBounded) {
  // Urban canyon: the map-matched solar distance may blur at shadow
  // transitions but cannot exceed the path length or go negative.
  DriveOptions options;
  const DriveLog log = simulate_drive(sq_.graph, scene_, traffic_, path_,
                                      TimeOfDay::hms(13, 0), options);
  // Re-noise the GPS track heavily, in place.
  Rng rng(555);
  DriveLog noisy = log;
  for (DriveSample& s : noisy.samples)
    s.gps_position =
        s.true_position + geo::Vec2{rng.normal(0.0, 15.0),
                                    rng.normal(0.0, 15.0)};
  const auto illuminated = detect_illumination(noisy, 0.45);
  const Meters measured =
      measured_solar_distance(sq_.graph, scene_, path_, noisy, illuminated);
  EXPECT_GE(measured.value(), 0.0);
  EXPECT_LE(measured.value(),
            path_length(path_, sq_.graph).value() * 1.25);
}

TEST_F(FailureInjectionTest, ValidationSurvivesAllFailuresAtOnce) {
  const auto profile = shadow::ShadingProfile::compute_exact(
      sq_.graph, scene_, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
      TimeOfDay::hms(18, 0));
  ValidationOptions vopt;
  vopt.drive.windshield.glitch_probability = 0.2;
  vopt.drive.sunroof.mount_attenuation = 0.05;
  vopt.drive.driver_speed_std = 0.12;
  const PathValidation row =
      validate_path(sq_.graph, scene_, profile, traffic_, path_,
                    TimeOfDay::hms(13, 0), vopt);
  // Degraded, but still in the right ballpark (within ~35% of model).
  EXPECT_GT(row.real_solar_distance.value(), 0.0);
  EXPECT_NEAR(row.real_solar_distance.value(),
              row.model_solar_distance.value(),
              row.model_solar_distance.value() * 0.35 + 20.0);
}

}  // namespace
}  // namespace sunchase::sensing
