#include "sunchase/sensing/sensors.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sunchase/common/error.h"

namespace sunchase::sensing {
namespace {

LightSensor::Options quiet_sensor() {
  LightSensor::Options opt;
  opt.noise_rel_std = 0.0;
  opt.glitch_probability = 0.0;
  return opt;
}

TEST(LightSensor, SunVsShadeSeparation) {
  LightSensor sensor(quiet_sensor(), Rng{1});
  const double sun = sensor.read(false, 1.0);
  const double shade = sensor.read(true, 1.0);
  EXPECT_GT(sun, shade * 5.0);
}

TEST(LightSensor, ScalesWithIrradianceFraction) {
  LightSensor sensor(quiet_sensor(), Rng{2});
  const double noon = sensor.read(false, 1.0);
  const double morning = sensor.read(false, 0.3);
  EXPECT_NEAR(morning / noon, 0.3, 1e-9);
}

TEST(LightSensor, FractionIsClamped) {
  LightSensor sensor(quiet_sensor(), Rng{3});
  EXPECT_DOUBLE_EQ(sensor.read(false, -0.5), 0.0);
  const double capped = sensor.read(false, 2.0);
  const double full = sensor.read(false, 1.0);
  EXPECT_DOUBLE_EQ(capped, full);
}

TEST(LightSensor, NoiseSpreadsReadings) {
  LightSensor::Options opt;
  opt.noise_rel_std = 0.05;
  opt.glitch_probability = 0.0;
  LightSensor sensor(opt, Rng{4});
  double lo = 1e18, hi = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double v = sensor.read(false, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi, lo * 1.05);  // visible spread
}

TEST(LightSensor, GlitchesProduceOutliers) {
  LightSensor::Options opt = quiet_sensor();
  opt.glitch_probability = 0.5;
  LightSensor sensor(opt, Rng{5});
  // In shade with many glitches, some readings exceed the clean shade
  // value massively.
  const double clean = LightSensor(quiet_sensor(), Rng{6}).read(true, 1.0);
  int outliers = 0;
  for (int i = 0; i < 200; ++i)
    if (sensor.read(true, 1.0) > clean * 3.0) ++outliers;
  EXPECT_GT(outliers, 20);
}

TEST(LightSensor, Validation) {
  LightSensor::Options bad = quiet_sensor();
  bad.mount_attenuation = 0.0;
  EXPECT_THROW(LightSensor(bad, Rng{7}), InvalidArgument);
  bad = quiet_sensor();
  bad.sun_lux = bad.shade_lux;
  EXPECT_THROW(LightSensor(bad, Rng{7}), InvalidArgument);
  bad = quiet_sensor();
  bad.glitch_probability = 1.5;
  EXPECT_THROW(LightSensor(bad, Rng{7}), InvalidArgument);
}

TEST(GpsSensor, NoiseStatisticsMatchSigma) {
  GpsSensor gps(GpsSensor::Options{.sigma_m = 4.0}, Rng{8});
  const geo::Vec2 truth{100.0, 200.0};
  double sum_sq = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const geo::Vec2 fix = gps.fix(truth);
    sum_sq += geo::norm_squared(fix - truth);
  }
  // E[|e|^2] = 2 sigma^2 for isotropic 2D Gaussian noise.
  EXPECT_NEAR(sum_sq / n, 2.0 * 16.0, 3.0);
}

TEST(GpsSensor, ZeroSigmaIsExact) {
  GpsSensor gps(GpsSensor::Options{.sigma_m = 0.0}, Rng{9});
  const geo::Vec2 truth{5.0, -3.0};
  EXPECT_EQ(gps.fix(truth), truth);
}

TEST(GpsSensor, RejectsNegativeSigma) {
  EXPECT_THROW(GpsSensor(GpsSensor::Options{.sigma_m = -1.0}, Rng{10}),
               InvalidArgument);
}

}  // namespace
}  // namespace sunchase::sensing
