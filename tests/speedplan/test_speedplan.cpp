#include "sunchase/speedplan/speedplan.h"

#include <gtest/gtest.h>

#include "core/core_fixture.h"
#include "sunchase/core/planner.h"
#include "sunchase/common/error.h"

namespace sunchase::speedplan {
namespace {

SegmentSpec lit(double meters, double watts = 200.0) {
  return SegmentSpec{Meters{meters}, 1.0, Watts{watts}};
}
SegmentSpec dark(double meters) {
  return SegmentSpec{Meters{meters}, 0.0, Watts{200.0}};
}

class SpeedPlanTest : public ::testing::Test {
 protected:
  std::unique_ptr<ev::ConsumptionModel> lv_ = ev::make_lv_prototype();
};

TEST_F(SpeedPlanTest, GenerousBatteryDrivesFlatOut) {
  const auto result = plan_speeds({lit(500), dark(500)}, *lv_,
                                  WattHours{5000.0}, WattHours{5000.0});
  ASSERT_TRUE(result.feasible);
  const SpeedPlanOptions defaults;
  for (const SegmentPlan& seg : result.segments)
    EXPECT_NEAR(seg.speed.value(), defaults.max_speed.value(), 1e-9);
}

TEST_F(SpeedPlanTest, TotalTimeIsSumOfSegmentTimes) {
  const auto result = plan_speeds({lit(400), dark(300), lit(200)}, *lv_,
                                  WattHours{1000.0}, WattHours{1000.0});
  ASSERT_TRUE(result.feasible);
  double sum = 0.0;
  for (const SegmentPlan& seg : result.segments) sum += seg.time.value();
  EXPECT_NEAR(result.total_time.value(), sum, 1e-9);
}

TEST_F(SpeedPlanTest, TightBatterySlowsDown) {
  // 2 km under a strong panel with almost no battery: the planner must
  // slow down so harvest keeps up; with a big battery it flies.
  const std::vector<SegmentSpec> route{lit(1000, 500.0), lit(1000, 500.0)};
  const auto rich =
      plan_speeds(route, *lv_, WattHours{200.0}, WattHours{200.0});
  const auto poor = plan_speeds(route, *lv_, WattHours{8.0}, WattHours{200.0});
  ASSERT_TRUE(rich.feasible);
  ASSERT_TRUE(poor.feasible);
  EXPECT_GT(poor.total_time.value(), rich.total_time.value());
}

TEST_F(SpeedPlanTest, InfeasibleWhenBatteryCannotSurvive) {
  // Fully shaded long route with a near-empty battery: no speed works
  // (consumption is at least b Wh/km regardless of speed).
  const auto result = plan_speeds({dark(2000)}, *lv_, WattHours{5.0},
                                  WattHours{100.0});
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.segments.empty());
}

TEST_F(SpeedPlanTest, EnergyTightPlanSlowsIlluminatedSegmentsFirst) {
  // Equal-length lit and dark segments under a tight budget: slowing
  // on the lit one both harvests more and consumes less, so its speed
  // must not exceed the dark one's.
  const std::vector<SegmentSpec> route{lit(800, 500.0), dark(800)};
  const auto result =
      plan_speeds(route, *lv_, WattHours{30.0}, WattHours{100.0});
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.segments[0].speed.value(),
            result.segments[1].speed.value() + 1e-9);
}

TEST_F(SpeedPlanTest, BatteryNeverNegativeAlongThePlan) {
  const std::vector<SegmentSpec> route{dark(600), lit(900), dark(400),
                                       lit(700)};
  const auto result =
      plan_speeds(route, *lv_, WattHours{25.0}, WattHours{60.0});
  if (!result.feasible) GTEST_SKIP() << "infeasible configuration";
  double battery = 25.0;
  for (const SegmentPlan& seg : result.segments) {
    battery += seg.harvested.value() - seg.consumed.value();
    battery = std::min(battery, 60.0);
    EXPECT_GE(battery, -1e-6);
  }
  EXPECT_NEAR(battery, result.final_battery.value(), 60.0 / 400 + 1e-6);
}

TEST_F(SpeedPlanTest, HarvestMatchesEquationTwo) {
  const auto result =
      plan_speeds({lit(720, 250.0)}, *lv_, WattHours{500.0},
                  WattHours{500.0});
  ASSERT_TRUE(result.feasible);
  const SegmentPlan& seg = result.segments[0];
  // Eq. 2: E = C * t_solar (fully illuminated segment).
  EXPECT_NEAR(seg.harvested.value(), 250.0 * seg.time.value() / 3600.0,
              1e-9);
}

TEST_F(SpeedPlanTest, Validation) {
  EXPECT_THROW((void)plan_speeds({}, *lv_, WattHours{10}, WattHours{10}),
               InvalidArgument);
  EXPECT_THROW((void)plan_speeds({lit(100)}, *lv_, WattHours{10},
                                 WattHours{0.0}),
               InvalidArgument);
  EXPECT_THROW((void)plan_speeds({lit(100)}, *lv_, WattHours{20},
                                 WattHours{10}),
               InvalidArgument);
  SpeedPlanOptions bad;
  bad.max_speed = bad.min_speed;
  EXPECT_THROW((void)plan_speeds({lit(100)}, *lv_, WattHours{5},
                                 WattHours{10}, bad),
               InvalidArgument);
  EXPECT_THROW((void)plan_speeds({SegmentSpec{Meters{0.0}, 0.5, Watts{200}}},
                                 *lv_, WattHours{5}, WattHours{10}),
               InvalidArgument);
  EXPECT_THROW((void)plan_speeds({SegmentSpec{Meters{10.0}, 1.5, Watts{200}}},
                                 *lv_, WattHours{5}, WattHours{10}),
               InvalidArgument);
}

TEST_F(SpeedPlanTest, SegmentsFromRouteSplitsByShade) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  roadnet::Path path;
  path.edges = {sq.graph.find_edge(0, 1), sq.graph.find_edge(1, 3)};
  const auto segments =
      segments_from_route(env.map, path, TimeOfDay::hms(10, 0));
  ASSERT_FALSE(segments.empty());
  // Total length preserved (within the 0.5 m drop threshold per part).
  double total = 0.0;
  for (const SegmentSpec& seg : segments) {
    total += seg.length.value();
    EXPECT_TRUE(seg.solar_fraction == 0.0 || seg.solar_fraction == 1.0);
    EXPECT_DOUBLE_EQ(seg.panel_power.value(), 200.0);
  }
  EXPECT_NEAR(total, path_length(path, sq.graph).value(), 2.0);
}

TEST_F(SpeedPlanTest, IntegrationWithSunChaseRoute) {
  // The paper's integration: route with SunChase, then speed-plan the
  // chosen route. The plan must be feasible on a modest battery and
  // must not be slower than crawling everywhere at minimum speed.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  const core::SunChasePlanner planner(env.world);
  const auto plan = planner.plan(city.node_at(1, 1), city.node_at(7, 7),
                                 TimeOfDay::hms(10, 0));
  const auto& route = plan.recommended().route.path;
  const auto segments =
      segments_from_route(env.map, route, TimeOfDay::hms(10, 0));
  const auto speed_plan = plan_speeds(segments, env.lv, WattHours{500.0},
                                      WattHours{500.0});
  ASSERT_TRUE(speed_plan.feasible);
  const SpeedPlanOptions defaults;
  double crawl_time = 0.0;
  for (const SegmentSpec& seg : segments)
    crawl_time += seg.length.value() / defaults.min_speed.value();
  EXPECT_LT(speed_plan.total_time.value(), crawl_time);
}

// Property sweep: whatever the battery budget, a feasible plan's final
// battery is within capacity and its time decreases as budget grows.
class SpeedPlanBudgetProperty : public ::testing::TestWithParam<double> {};

TEST_P(SpeedPlanBudgetProperty, MonotoneInBudget) {
  const auto lv = ev::make_lv_prototype();
  const std::vector<SegmentSpec> route{
      SegmentSpec{Meters{700}, 1.0, Watts{200}},
      SegmentSpec{Meters{500}, 0.0, Watts{200}},
      SegmentSpec{Meters{600}, 1.0, Watts{200}}};
  const double budget = GetParam();
  const auto tight = plan_speeds(route, *lv, WattHours{budget},
                                 WattHours{200.0});
  const auto loose = plan_speeds(route, *lv, WattHours{budget + 20.0},
                                 WattHours{200.0});
  if (!tight.feasible) {
    SUCCEED();
    return;
  }
  ASSERT_TRUE(loose.feasible);
  EXPECT_LE(loose.total_time.value(), tight.total_time.value() + 1e-6);
  EXPECT_LE(tight.final_battery.value(), 200.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, SpeedPlanBudgetProperty,
                         ::testing::Values(10.0, 20.0, 40.0, 80.0, 160.0));

}  // namespace
}  // namespace sunchase::speedplan
