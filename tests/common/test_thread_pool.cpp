#include "sunchase/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sunchase/common/error.h"

namespace sunchase::common {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(2);
  auto a = pool.submit([] { return 6 * 7; });
  auto b = pool.submit([] { return std::string("sun"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "sun");
}

TEST(ThreadPool, ZeroWorkersRejected) {
  EXPECT_THROW(ThreadPool{0}, InvalidArgument);
}

TEST(ThreadPool, WorkerCountIsFixed) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, DefaultWorkerCountIsPositive) {
  EXPECT_GE(ThreadPool::default_worker_count(), 1u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 1; });
  auto bad = pool.submit(
      []() -> int { throw RoutingError("no route"); });
  EXPECT_EQ(ok.get(), 1);
  try {
    (void)bad.get();
    FAIL() << "expected RoutingError";
  } catch (const RoutingError& e) {
    EXPECT_STREQ(e.what(), "no route");
  }
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i)
    futures.push_back(pool.submit([i] { return i; }));
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, static_cast<long long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  auto id = pool.submit([] { return std::this_thread::get_id(); }).get();
  EXPECT_NE(id, std::this_thread::get_id());
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(1);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i)
      futures.push_back(pool.submit([&completed] { ++completed; }));
    // Futures intentionally not waited on: the destructor must finish
    // every queued task before joining.
  }
  EXPECT_EQ(completed.load(), 50);
}

TEST(ThreadPool, MoveOnlyResultsSupported) {
  ThreadPool pool(1);
  auto f = pool.submit([] { return std::make_unique<int>(9); });
  EXPECT_EQ(*f.get(), 9);
}

}  // namespace
}  // namespace sunchase::common
