#include <gtest/gtest.h>

#include <string>

#include "sunchase/common/assert.h"
#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"

namespace sunchase {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(SUNCHASE_EXPECTS(1 + 1 == 2));
}

TEST(Contracts, ExpectsThrowsOnFalse) {
  EXPECT_THROW(SUNCHASE_EXPECTS(false), ContractViolation);
}

TEST(Contracts, EnsuresThrowsOnFalse) {
  EXPECT_THROW(SUNCHASE_ENSURES(2 > 3), ContractViolation);
}

TEST(Contracts, MessageNamesExpressionAndLocation) {
  try {
    SUNCHASE_EXPECTS(42 < 0);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("42 < 0"), std::string::npos);
    EXPECT_NE(what.find("test_assert_logging.cpp"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Errors, HierarchyIsCatchableAsBase) {
  try {
    throw RoutingError("no route");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "no route");
  }
}

TEST(Errors, DistinctTypesAreDistinct) {
  EXPECT_THROW(throw InvalidArgument("x"), InvalidArgument);
  EXPECT_THROW(throw IoError("x"), IoError);
  EXPECT_THROW(throw GraphError("x"), GraphError);
}

TEST(Logging, LevelFilterRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(before);
}

TEST(Logging, EmitBelowLevelIsSilentlyDropped) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  // Must not crash or throw; output is suppressed.
  EXPECT_NO_THROW(log_message(LogLevel::Error, "dropped"));
  EXPECT_NO_THROW(SUNCHASE_LOG(Warning) << "also dropped " << 42);
  set_log_level(before);
}

// Regression: SUNCHASE_LOG used to build the whole message (allocating
// an ostringstream and evaluating every streamed expression) before
// the level check dropped it. A filtered-out level must not evaluate
// its operands at all.
TEST(Logging, DisabledLevelsDoNotEvaluateStreamedExpressions) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Warning);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  SUNCHASE_LOG(Debug) << "ignored " << expensive();
  SUNCHASE_LOG(Info) << "ignored " << expensive();
  EXPECT_EQ(evaluations, 0);
  set_log_level(before);
}

TEST(Logging, EnabledLevelsStillEvaluateAndEmit) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 7;
  };
  SUNCHASE_LOG(Error) << "emitted " << expensive();
  EXPECT_EQ(evaluations, 1);
  set_log_level(before);
}

TEST(Logging, LogEnabledTracksThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Info);
  EXPECT_FALSE(log_enabled(LogLevel::Debug));
  EXPECT_TRUE(log_enabled(LogLevel::Info));
  EXPECT_TRUE(log_enabled(LogLevel::Error));
  set_log_level(before);
}

TEST(Logging, ParseLogLevelRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warning);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warning);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_THROW(parse_log_level("loud"), InvalidArgument);
}

// The macro must behave as a single statement inside unbraced control
// flow (the classic dangling-else hazard for if-based log macros).
TEST(Logging, MacroIsDanglingElseSafe) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  bool else_ran = false;
  if (false)
    SUNCHASE_LOG(Error) << "never";
  else
    else_ran = true;
  EXPECT_TRUE(else_ran);
  set_log_level(before);
}

}  // namespace
}  // namespace sunchase
