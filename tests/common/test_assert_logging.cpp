#include <gtest/gtest.h>

#include <string>

#include "sunchase/common/assert.h"
#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"

namespace sunchase {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(SUNCHASE_EXPECTS(1 + 1 == 2));
}

TEST(Contracts, ExpectsThrowsOnFalse) {
  EXPECT_THROW(SUNCHASE_EXPECTS(false), ContractViolation);
}

TEST(Contracts, EnsuresThrowsOnFalse) {
  EXPECT_THROW(SUNCHASE_ENSURES(2 > 3), ContractViolation);
}

TEST(Contracts, MessageNamesExpressionAndLocation) {
  try {
    SUNCHASE_EXPECTS(42 < 0);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("42 < 0"), std::string::npos);
    EXPECT_NE(what.find("test_assert_logging.cpp"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Errors, HierarchyIsCatchableAsBase) {
  try {
    throw RoutingError("no route");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "no route");
  }
}

TEST(Errors, DistinctTypesAreDistinct) {
  EXPECT_THROW(throw InvalidArgument("x"), InvalidArgument);
  EXPECT_THROW(throw IoError("x"), IoError);
  EXPECT_THROW(throw GraphError("x"), GraphError);
}

TEST(Logging, LevelFilterRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(before);
}

TEST(Logging, EmitBelowLevelIsSilentlyDropped) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  // Must not crash or throw; output is suppressed.
  EXPECT_NO_THROW(log_message(LogLevel::Error, "dropped"));
  EXPECT_NO_THROW(SUNCHASE_LOG(Warning) << "also dropped " << 42);
  set_log_level(before);
}

}  // namespace
}  // namespace sunchase
