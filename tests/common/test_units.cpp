#include "sunchase/common/units.h"

#include <gtest/gtest.h>

namespace sunchase {
namespace {

using namespace sunchase::literals;

TEST(Units, SameDimensionArithmetic) {
  const Meters a{100.0};
  const Meters b{50.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 50.0);
  EXPECT_DOUBLE_EQ((-a).value(), -100.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 200.0);
  EXPECT_DOUBLE_EQ((3.0 * b).value(), 150.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 25.0);
}

TEST(Units, CompoundAssignment) {
  Meters m{10.0};
  m += Meters{5.0};
  EXPECT_DOUBLE_EQ(m.value(), 15.0);
  m -= Meters{3.0};
  EXPECT_DOUBLE_EQ(m.value(), 12.0);
  m *= 2.0;
  EXPECT_DOUBLE_EQ(m.value(), 24.0);
  m /= 4.0;
  EXPECT_DOUBLE_EQ(m.value(), 6.0);
}

TEST(Units, RatioIsDimensionless) {
  const double r = Meters{150.0} / Meters{50.0};
  EXPECT_DOUBLE_EQ(r, 3.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Seconds{1.0}, Seconds{2.0});
  EXPECT_GE(Seconds{2.0}, Seconds{2.0});
  EXPECT_EQ(Watts{5.0}, Watts{5.0});
  EXPECT_NE(Watts{5.0}, Watts{6.0});
}

TEST(Units, SpeedDistanceTimeTriangle) {
  const Meters d{300.0};
  const Seconds t{20.0};
  const MetersPerSecond v = d / t;
  EXPECT_DOUBLE_EQ(v.value(), 15.0);
  EXPECT_DOUBLE_EQ((d / v).value(), 20.0);
  EXPECT_DOUBLE_EQ((v * t).value(), 300.0);
  EXPECT_DOUBLE_EQ((t * v).value(), 300.0);
}

TEST(Units, IrradianceTimesAreaIsPower) {
  const Watts p = WattsPerSquareMeter{1000.0} * SquareMeters{1.5};
  EXPECT_DOUBLE_EQ(p.value(), 1500.0);
  const Watts q = SquareMeters{2.0} * WattsPerSquareMeter{500.0};
  EXPECT_DOUBLE_EQ(q.value(), 1000.0);
}

TEST(Units, EnergyWattHours) {
  // 200 W for half an hour = 100 Wh (the paper's EI bookkeeping).
  EXPECT_DOUBLE_EQ(energy(Watts{200.0}, Seconds{1800.0}).value(), 100.0);
  EXPECT_DOUBLE_EQ(energy(Watts{0.0}, Seconds{1800.0}).value(), 0.0);
}

TEST(Units, ConvenienceConversions) {
  EXPECT_DOUBLE_EQ(hours(2.0).value(), 7200.0);
  EXPECT_DOUBLE_EQ(minutes(15.0).value(), 900.0);
  EXPECT_DOUBLE_EQ(kilometers(2.5).value(), 2500.0);
  EXPECT_NEAR(kmh(36.0).value(), 10.0, 1e-12);
  EXPECT_NEAR(to_kmh(MetersPerSecond{10.0}), 36.0, 1e-12);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((1.5_km).value(), 1500.0);
  EXPECT_DOUBLE_EQ((250_m).value(), 250.0);
  EXPECT_DOUBLE_EQ((90_s).value(), 90.0);
  EXPECT_DOUBLE_EQ((200_W).value(), 200.0);
  EXPECT_DOUBLE_EQ((15.5_Wh).value(), 15.5);
  EXPECT_NEAR((36_kmh).value(), 10.0, 1e-12);
}

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_DOUBLE_EQ(Meters{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(WattHours{}.value(), 0.0);
}

}  // namespace
}  // namespace sunchase
