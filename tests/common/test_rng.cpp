#include "sunchase/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sunchase {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear in 1000 draws
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(12);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(42.0);
  EXPECT_NEAR(sum / n, 42.0, 1.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(16);
  Rng child = parent.split();
  // Child stream should not replay the parent stream.
  Rng parent2(16);
  parent2.next_u64();  // consume the value used to seed the child
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == parent2.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace sunchase
