#include "sunchase/common/time_of_day.h"

#include <gtest/gtest.h>

#include <limits>

#include "sunchase/common/error.h"

namespace sunchase {
namespace {

TEST(TimeOfDay, HmsConstruction) {
  const TimeOfDay t = TimeOfDay::hms(10, 30, 15);
  EXPECT_DOUBLE_EQ(t.seconds_since_midnight(), 10 * 3600 + 30 * 60 + 15);
  EXPECT_NEAR(t.hours_since_midnight(), 10.504, 1e-3);
}

TEST(TimeOfDay, HmsRejectsOutOfRange) {
  EXPECT_THROW(TimeOfDay::hms(24, 0, 0), InvalidArgument);
  EXPECT_THROW(TimeOfDay::hms(-1, 0, 0), InvalidArgument);
  EXPECT_THROW(TimeOfDay::hms(10, 60, 0), InvalidArgument);
  EXPECT_THROW(TimeOfDay::hms(10, 0, 60), InvalidArgument);
}

TEST(TimeOfDay, ParseFormats) {
  EXPECT_EQ(TimeOfDay::parse("09:15"), TimeOfDay::hms(9, 15));
  EXPECT_EQ(TimeOfDay::parse("16:00:30"), TimeOfDay::hms(16, 0, 30));
}

TEST(TimeOfDay, ParseRejectsMalformed) {
  EXPECT_THROW(TimeOfDay::parse("nonsense"), IoError);
  EXPECT_THROW(TimeOfDay::parse("25:00"), IoError);
  EXPECT_THROW(TimeOfDay::parse(""), IoError);
  EXPECT_THROW(TimeOfDay::parse("12"), IoError);
}

TEST(TimeOfDay, SlotIndexing) {
  // 96 slots of 15 minutes; 10:00 is slot 40.
  EXPECT_EQ(TimeOfDay::hms(0, 0).slot_index(), 0);
  EXPECT_EQ(TimeOfDay::hms(10, 0).slot_index(), 40);
  EXPECT_EQ(TimeOfDay::hms(10, 14, 59).slot_index(), 40);
  EXPECT_EQ(TimeOfDay::hms(10, 15).slot_index(), 41);
  EXPECT_EQ(TimeOfDay::hms(23, 59, 59).slot_index(), 95);
}

TEST(TimeOfDay, SlotStartRoundTrip) {
  for (int slot = 0; slot < TimeOfDay::kSlotsPerDay; ++slot)
    EXPECT_EQ(TimeOfDay::slot_start(slot).slot_index(), slot);
}

TEST(TimeOfDay, SlotStartRejectsOutOfRange) {
  // Both ends of the documented [0, kSlotsPerDay) precondition.
  EXPECT_THROW(TimeOfDay::slot_start(-1), InvalidArgument);
  EXPECT_THROW(TimeOfDay::slot_start(TimeOfDay::kSlotsPerDay),
               InvalidArgument);
  EXPECT_THROW(TimeOfDay::slot_start(std::numeric_limits<int>::min()),
               InvalidArgument);
  EXPECT_NO_THROW(TimeOfDay::slot_start(0));
  EXPECT_NO_THROW(TimeOfDay::slot_start(TimeOfDay::kSlotsPerDay - 1));
}

TEST(TimeOfDay, AdvanceAndSince) {
  const TimeOfDay t = TimeOfDay::hms(10, 0);
  const TimeOfDay later = t.advanced_by(minutes(20.0));
  EXPECT_EQ(later, TimeOfDay::hms(10, 20));
  EXPECT_DOUBLE_EQ(later.since(t).value(), 1200.0);
}

TEST(TimeOfDay, AdvanceSaturatesAtEndOfDay) {
  const TimeOfDay t = TimeOfDay::hms(23, 50);
  const TimeOfDay later = t.advanced_by(hours(2.0));
  EXPECT_LT(later.seconds_since_midnight(), TimeOfDay::kSecondsPerDay);
  EXPECT_GE(later, t);
}

TEST(TimeOfDay, FromSecondsClamps) {
  EXPECT_DOUBLE_EQ(TimeOfDay::from_seconds(-5.0).seconds_since_midnight(),
                   0.0);
  EXPECT_LT(TimeOfDay::from_seconds(1e9).seconds_since_midnight(),
            TimeOfDay::kSecondsPerDay);
}

TEST(TimeOfDay, FromSecondsClampsNonFiniteInput) {
  // NaN slips past `s < 0` and `s >= kSecondsPerDay` (both comparisons
  // are false), so an unguarded slot_index() would cast NaN to int: UB.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(TimeOfDay::from_seconds(nan).seconds_since_midnight(),
                   0.0);
  EXPECT_EQ(TimeOfDay::from_seconds(nan).slot_index(), 0);
  EXPECT_DOUBLE_EQ(TimeOfDay::from_seconds(-inf).seconds_since_midnight(),
                   0.0);
  EXPECT_DOUBLE_EQ(TimeOfDay::from_seconds(inf).seconds_since_midnight(),
                   TimeOfDay::kSecondsPerDay - 1);
  EXPECT_EQ(TimeOfDay::from_seconds(inf).slot_index(),
            TimeOfDay::kSlotsPerDay - 1);
}

TEST(TimeOfDay, AdvancedByNonFiniteDtStaysInsideTheDay) {
  const TimeOfDay t = TimeOfDay::hms(10, 0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const TimeOfDay after_nan = t.advanced_by(Seconds{nan});
  EXPECT_GE(after_nan.seconds_since_midnight(), 0.0);
  EXPECT_LT(after_nan.seconds_since_midnight(), TimeOfDay::kSecondsPerDay);
  EXPECT_EQ(after_nan.slot_index(), 0);  // NaN sum clamps to midnight
  const TimeOfDay after_inf = t.advanced_by(Seconds{inf});
  EXPECT_EQ(after_inf.slot_index(), TimeOfDay::kSlotsPerDay - 1);
  const TimeOfDay after_neg = t.advanced_by(Seconds{-inf});
  EXPECT_DOUBLE_EQ(after_neg.seconds_since_midnight(), 0.0);
}

TEST(TimeOfDay, EndOfDaySaturatesIntoTheLastSlot) {
  // from_seconds(86400) saturates to 86399 — slot 95, never slot 96.
  const TimeOfDay end = TimeOfDay::from_seconds(TimeOfDay::kSecondsPerDay);
  EXPECT_DOUBLE_EQ(end.seconds_since_midnight(),
                   TimeOfDay::kSecondsPerDay - 1);
  EXPECT_EQ(end.slot_index(), TimeOfDay::kSlotsPerDay - 1);
}

TEST(TimeOfDay, Ordering) {
  EXPECT_LT(TimeOfDay::hms(9, 0), TimeOfDay::hms(10, 0));
  EXPECT_EQ(TimeOfDay::hms(12, 0), TimeOfDay::hms(12, 0));
}

TEST(TimeOfDay, ToString) {
  EXPECT_EQ(TimeOfDay::hms(9, 5, 7).to_string(), "09:05:07");
  EXPECT_EQ(TimeOfDay::hms(16, 0).to_string(), "16:00:00");
}

}  // namespace
}  // namespace sunchase
