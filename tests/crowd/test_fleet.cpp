#include "sunchase/crowd/fleet.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/shadow/scenegen.h"
#include "test_helpers.h"

namespace sunchase::crowd {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  FleetTest()
      : city_(city_options()),
        proj_(city_.options().origin),
        scene_(generate_scene(city_.graph(), proj_,
                              shadow::SceneGenOptions{})),
        traffic_(roadnet::UrbanTraffic::Options{}) {}

  static roadnet::GridCityOptions city_options() {
    roadnet::GridCityOptions opt;
    opt.rows = 6;
    opt.cols = 6;
    return opt;
  }

  roadnet::GridCity city_;
  geo::LocalProjection proj_;
  shadow::Scene scene_;
  roadnet::UrbanTraffic traffic_;
};

TEST_F(FleetTest, ProducesObservationsWithinBounds) {
  FleetOptions opt;
  opt.vehicles = 10;
  const auto obs = simulate_fleet(city_.graph(), scene_, traffic_, opt);
  ASSERT_FALSE(obs.empty());
  for (const Observation& o : obs) {
    EXPECT_LT(o.edge, city_.graph().edge_count());
    EXPECT_GE(o.shaded_fraction, 0.0);
    EXPECT_LE(o.shaded_fraction, 1.0);
    EXPECT_GE(o.slot, opt.day_start.slot_index());
    // Trips may run past day_end; observations stay within the day.
    EXPECT_LT(o.slot, TimeOfDay::kSlotsPerDay);
    EXPECT_GE(o.vehicle_id, 1u);
    EXPECT_LE(o.vehicle_id, 10u);
  }
}

TEST_F(FleetTest, DeterministicForSeed) {
  FleetOptions opt;
  opt.vehicles = 5;
  const auto a = simulate_fleet(city_.graph(), scene_, traffic_, opt);
  const auto b = simulate_fleet(city_.graph(), scene_, traffic_, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].edge, b[i].edge);
    EXPECT_EQ(a[i].shaded_fraction, b[i].shaded_fraction);
  }
}

TEST_F(FleetTest, MoreVehiclesMoreCoverage) {
  auto coverage_with = [&](int vehicles) {
    FleetOptions opt;
    opt.vehicles = vehicles;
    const auto obs = simulate_fleet(city_.graph(), scene_, traffic_, opt);
    CrowdSolarMap::Options mopt;
    mopt.first_slot = opt.day_start.slot_index();
    mopt.last_slot = 74;
    CrowdSolarMap map(city_.graph().edge_count(),
                      [](roadnet::EdgeId, TimeOfDay) { return 0.5; }, mopt);
    for (const Observation& o : obs) map.report(o);
    return map.coverage();
  };
  EXPECT_LT(coverage_with(3), coverage_with(40));
}

TEST_F(FleetTest, CrowdMapTracksGroundTruth) {
  FleetOptions opt;
  opt.vehicles = 120;
  opt.trips_per_vehicle = 8;
  opt.observation_noise_std = 0.03;
  const auto obs = simulate_fleet(city_.graph(), scene_, traffic_, opt);

  CrowdSolarMap::Options mopt;
  mopt.first_slot = opt.day_start.slot_index();
  mopt.last_slot = TimeOfDay::hms(17, 0).slot_index();
  mopt.min_observations = 3;
  CrowdSolarMap map(city_.graph().edge_count(),
                    [](roadnet::EdgeId, TimeOfDay) { return 0.5; }, mopt);
  for (const Observation& o : obs) map.report(o);
  EXPECT_GT(map.coverage(), 0.1);

  // The crowd map must beat the flat prior against ground truth, and
  // covered cells must track the truth closely.
  const auto truth = shadow::make_exact_estimator(city_.graph(), scene_,
                                                  geo::DayOfYear{196});
  double err_crowd = 0.0, err_prior = 0.0;
  int cells = 0;
  for (roadnet::EdgeId e = 0; e < city_.graph().edge_count(); e += 3) {
    for (int slot = mopt.first_slot; slot <= mopt.last_slot; slot += 4) {
      const TimeOfDay t = TimeOfDay::slot_start(slot);
      err_crowd += std::abs(map.shaded_fraction(e, t) - truth(e, t));
      err_prior += std::abs(0.5 - truth(e, t));
      ++cells;
    }
  }
  EXPECT_LT(err_crowd, err_prior);
  EXPECT_LT(err_crowd / cells, 0.35);
}

TEST_F(FleetTest, Validation) {
  FleetOptions bad;
  bad.vehicles = 0;
  EXPECT_THROW((void)simulate_fleet(city_.graph(), scene_, traffic_, bad),
               InvalidArgument);
  bad = FleetOptions{};
  bad.day_end = bad.day_start;
  EXPECT_THROW((void)simulate_fleet(city_.graph(), scene_, traffic_, bad),
               InvalidArgument);
  bad = FleetOptions{};
  bad.report_probability = 1.5;
  EXPECT_THROW((void)simulate_fleet(city_.graph(), scene_, traffic_, bad),
               InvalidArgument);
  bad = FleetOptions{};
  bad.observation_noise_std = -0.1;
  EXPECT_THROW((void)simulate_fleet(city_.graph(), scene_, traffic_, bad),
               InvalidArgument);
}

TEST_F(FleetTest, ReportProbabilityThinsObservations) {
  FleetOptions always;
  always.vehicles = 10;
  always.report_probability = 1.0;
  FleetOptions sometimes = always;
  sometimes.report_probability = 0.3;
  const auto all =
      simulate_fleet(city_.graph(), scene_, traffic_, always);
  const auto some =
      simulate_fleet(city_.graph(), scene_, traffic_, sometimes);
  EXPECT_LT(some.size(), all.size());
  EXPECT_GT(some.size(), all.size() / 10);
}

}  // namespace
}  // namespace sunchase::crowd
