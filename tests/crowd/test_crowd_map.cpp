#include "sunchase/crowd/crowd_map.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "sunchase/common/rng.h"

namespace sunchase::crowd {
namespace {

CrowdSolarMap::Options window() {
  CrowdSolarMap::Options opt;
  opt.first_slot = 36;  // 09:00
  opt.last_slot = 68;   // 17:00
  return opt;
}

shadow::ShadedFractionFn constant_prior(double value) {
  return [value](roadnet::EdgeId, TimeOfDay) { return value; };
}

TEST(CrowdMap, PriorAnswersWhenNoData) {
  const CrowdSolarMap map(10, constant_prior(0.42), window());
  EXPECT_DOUBLE_EQ(map.shaded_fraction(3, TimeOfDay::hms(12, 0)), 0.42);
  EXPECT_DOUBLE_EQ(map.coverage(), 0.0);
  EXPECT_EQ(map.observation_count(), 0u);
}

TEST(CrowdMap, SingleObservationOverridesPrior) {
  CrowdSolarMap map(10, constant_prior(0.42), window());
  map.report(Observation{3, TimeOfDay::hms(12, 0).slot_index(), 0.8, 1});
  EXPECT_DOUBLE_EQ(map.shaded_fraction(3, TimeOfDay::hms(12, 5)), 0.8);
  // Other cells still fall back to the prior.
  EXPECT_DOUBLE_EQ(map.shaded_fraction(3, TimeOfDay::hms(15, 0)), 0.42);
  EXPECT_DOUBLE_EQ(map.shaded_fraction(4, TimeOfDay::hms(12, 0)), 0.42);
}

TEST(CrowdMap, ObservationsAverage) {
  CrowdSolarMap map(4, constant_prior(0.0), window());
  const int slot = TimeOfDay::hms(11, 0).slot_index();
  map.report(Observation{1, slot, 0.2, 1});
  map.report(Observation{1, slot, 0.4, 2});
  map.report(Observation{1, slot, 0.6, 3});
  EXPECT_NEAR(map.shaded_fraction(1, TimeOfDay::hms(11, 10)), 0.4, 1e-12);
}

TEST(CrowdMap, MinObservationsThreshold) {
  CrowdSolarMap::Options opt = window();
  opt.min_observations = 3;
  CrowdSolarMap map(4, constant_prior(0.9), opt);
  const int slot = TimeOfDay::hms(11, 0).slot_index();
  map.report(Observation{1, slot, 0.1, 1});
  map.report(Observation{1, slot, 0.1, 2});
  EXPECT_DOUBLE_EQ(map.shaded_fraction(1, TimeOfDay::hms(11, 0)), 0.9);
  map.report(Observation{1, slot, 0.1, 3});
  EXPECT_NEAR(map.shaded_fraction(1, TimeOfDay::hms(11, 0)), 0.1, 1e-12);
}

TEST(CrowdMap, TimesOutsideWindowClamp) {
  CrowdSolarMap map(4, constant_prior(0.5), window());
  const int first = window().first_slot;
  map.report(Observation{0, first, 0.25, 1});
  EXPECT_DOUBLE_EQ(map.shaded_fraction(0, TimeOfDay::hms(6, 0)), 0.25);
}

TEST(CrowdMap, CoverageCountsCells) {
  CrowdSolarMap::Options opt = window();
  const int slots = opt.last_slot - opt.first_slot + 1;
  CrowdSolarMap map(2, constant_prior(0.0), opt);
  map.report(Observation{0, opt.first_slot, 0.5, 1});
  map.report(Observation{1, opt.last_slot, 0.5, 1});
  EXPECT_NEAR(map.coverage(), 2.0 / (2.0 * slots), 1e-12);
}

TEST(CrowdMap, ReportValidation) {
  CrowdSolarMap map(4, constant_prior(0.5), window());
  EXPECT_THROW(map.report(Observation{9, 40, 0.5, 1}), InvalidArgument);
  EXPECT_THROW(map.report(Observation{0, 2, 0.5, 1}), InvalidArgument);
  EXPECT_THROW(map.report(Observation{0, 40, 1.5, 1}), InvalidArgument);
  EXPECT_THROW(map.report(Observation{0, 40, -0.1, 1}), InvalidArgument);
}

TEST(CrowdMap, ConstructionValidation) {
  EXPECT_THROW(CrowdSolarMap(0, constant_prior(0.5), window()),
               InvalidArgument);
  EXPECT_THROW(CrowdSolarMap(4, nullptr, window()), InvalidArgument);
  CrowdSolarMap::Options bad = window();
  bad.last_slot = bad.first_slot - 1;
  EXPECT_THROW(CrowdSolarMap(4, constant_prior(0.5), bad), InvalidArgument);
  bad = window();
  bad.min_observations = 0;
  EXPECT_THROW(CrowdSolarMap(4, constant_prior(0.5), bad), InvalidArgument);
}

TEST(CrowdMap, NoisyObservationsConvergeToTruth) {
  CrowdSolarMap map(1, constant_prior(0.0), window());
  Rng rng(99);
  const int slot = TimeOfDay::hms(13, 0).slot_index();
  const double truth = 0.37;
  for (int i = 0; i < 2000; ++i) {
    const double noisy =
        std::clamp(truth + rng.normal(0.0, 0.1), 0.0, 1.0);
    map.report(Observation{0, slot, noisy,
                           static_cast<std::uint64_t>(i)});
  }
  EXPECT_NEAR(map.shaded_fraction(0, TimeOfDay::hms(13, 0)), truth, 0.01);
}

TEST(CrowdMap, EstimatorFeedsShadingProfile) {
  CrowdSolarMap map(2, constant_prior(0.5), window());
  // Tiny graph matching the 2 edges.
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_two_way(0, 1);
  const roadnet::RoadGraph g = std::move(b).build();
  map.report(Observation{0, 40, 0.2, 1});
  const auto profile = shadow::ShadingProfile::compute(
      g, map.estimator(), TimeOfDay::slot_start(40),
      TimeOfDay::slot_start(40));
  EXPECT_NEAR(profile.shaded_fraction(0, TimeOfDay::slot_start(40)), 0.2,
              1e-6);
  EXPECT_NEAR(profile.shaded_fraction(1, TimeOfDay::slot_start(40)), 0.5,
              1e-6);
}

}  // namespace
}  // namespace sunchase::crowd
