// Folding crowdsensed observations into the versioned world stream:
// covered cells take the crowd mean, uncovered cells keep the *base
// snapshot's* shading (never the crowd prior), untouched components are
// carried over by pointer, and publishing leaves older pins intact.
#include "sunchase/crowd/world_fold.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "sunchase/core/planner.h"
#include "sunchase/ev/consumption.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/solar/input_map.h"

namespace sunchase::crowd {
namespace {

constexpr double kBaseShade = 0.40;

/// A small grid world with uniform 0.40 shading over 08:00-18:30.
core::WorldInit base_init(const roadnet::GridCity& city) {
  core::WorldInit init;
  init.graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
  init.traffic = std::make_shared<const roadnet::UniformTraffic>(kmh(15.0));
  init.shading = std::make_shared<const shadow::ShadingProfile>(
      shadow::ShadingProfile::compute(
          *init.graph,
          [](roadnet::EdgeId, TimeOfDay) { return kBaseShade; },
          TimeOfDay::hms(8, 0), TimeOfDay::hms(18, 30)));
  init.panel_power = solar::constant_panel_power(Watts{200.0});
  init.vehicles.push_back(
      std::shared_ptr<const ev::ConsumptionModel>(ev::make_lv_prototype()));
  return init;
}

CrowdSolarMap make_crowd(std::size_t edge_count) {
  CrowdSolarMap::Options opt;
  opt.first_slot = TimeOfDay::hms(8, 0).slot_index();
  opt.last_slot = TimeOfDay::hms(18, 30).slot_index();
  // A prior that is obviously wrong everywhere: folding must never
  // leak it into uncovered cells.
  return CrowdSolarMap(edge_count,
                       [](roadnet::EdgeId, TimeOfDay) { return 0.99; }, opt);
}

TEST(WorldFold, CoveredCellsTakeCrowdMeanUncoveredKeepBaseProfile) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const core::WorldPtr base = core::World::create(base_init(city));

  CrowdSolarMap crowd = make_crowd(base->graph().edge_count());
  const TimeOfDay noon = TimeOfDay::hms(12, 0);
  crowd.report(Observation{0, noon.slot_index(), 0.8, 1});
  crowd.report(Observation{0, noon.slot_index(), 0.6, 2});

  const core::WorldInit folded = fold_observations(*base, crowd);
  const shadow::ShadingProfile& corrected = *folded.shading;

  // The reported cell is the crowd mean; the same edge one slot later
  // and every other edge keep the base value — not the 0.99 prior.
  EXPECT_NEAR(corrected.shaded_fraction(0, noon), 0.7, 1e-6);
  EXPECT_NEAR(corrected.shaded_fraction(0, TimeOfDay::hms(15, 0)),
              kBaseShade, 1e-6);
  EXPECT_NEAR(corrected.shaded_fraction(1, noon), kBaseShade, 1e-6);

  // Everything the crowd cannot observe is carried over by pointer.
  EXPECT_EQ(folded.graph.get(), &base->graph());
  EXPECT_EQ(folded.traffic.get(), &base->traffic());
  ASSERT_EQ(folded.vehicles.size(), 1u);
  EXPECT_EQ(folded.vehicles[0].get(), &base->vehicle(0));

  // The corrected profile samples the same slot window as the base.
  EXPECT_EQ(corrected.first_slot(), base->shading().first_slot());
  EXPECT_EQ(corrected.last_slot(), base->shading().last_slot());
}

TEST(WorldFold, PublishCrowdWorldBumpsVersionAndKeepsOldPins) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  core::WorldStore store(base_init(city));
  const core::WorldPtr pinned = store.current();

  CrowdSolarMap crowd = make_crowd(pinned->graph().edge_count());
  const TimeOfDay noon = TimeOfDay::hms(12, 0);
  crowd.report(Observation{0, noon.slot_index(), 0.95, 1});

  const core::WorldPtr published = publish_crowd_world(store, crowd);
  EXPECT_EQ(published->version(), 2u);
  EXPECT_EQ(store.current(), published);
  EXPECT_EQ(&published->graph(), &pinned->graph());

  // New queries see the corrected cell; the old pin still answers with
  // the base profile.
  EXPECT_NEAR(published->shading().shaded_fraction(0, noon), 0.95, 1e-6);
  EXPECT_NEAR(pinned->shading().shaded_fraction(0, noon), kBaseShade, 1e-6);

  // The published snapshot is a fully working planning world.
  const core::SunChasePlanner planner(published);
  const core::PlanResult plan =
      planner.plan(city.node_at(0, 0), city.node_at(5, 5), noon);
  EXPECT_FALSE(plan.candidates.empty());
}

}  // namespace
}  // namespace sunchase::crowd
