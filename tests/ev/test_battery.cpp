#include "sunchase/ev/battery.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"

namespace sunchase::ev {
namespace {

TEST(Battery, StartsFullByDefault) {
  const Battery b(WattHours{85000.0});  // Tesla Model S 85 kWh
  EXPECT_DOUBLE_EQ(b.charge().value(), 85000.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  EXPECT_FALSE(b.empty());
}

TEST(Battery, ExplicitInitialCharge) {
  const Battery b(WattHours{1000.0}, WattHours{250.0});
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.25);
}

TEST(Battery, Validation) {
  EXPECT_THROW(Battery(WattHours{0.0}), InvalidArgument);
  EXPECT_THROW(Battery(WattHours{100.0}, WattHours{-1.0}), InvalidArgument);
  EXPECT_THROW(Battery(WattHours{100.0}, WattHours{101.0}), InvalidArgument);
}

TEST(Battery, ChargeClampsAtCapacity) {
  Battery b(WattHours{100.0}, WattHours{90.0});
  const WattHours stored = b.charge_by(WattHours{25.0});
  EXPECT_DOUBLE_EQ(stored.value(), 10.0);
  EXPECT_DOUBLE_EQ(b.charge().value(), 100.0);
}

TEST(Battery, DischargeClampsAtZero) {
  Battery b(WattHours{100.0}, WattHours{15.0});
  const WattHours delivered = b.discharge_by(WattHours{40.0});
  EXPECT_DOUBLE_EQ(delivered.value(), 15.0);
  EXPECT_TRUE(b.empty());
}

TEST(Battery, NormalChargeDischargeCycle) {
  Battery b(WattHours{100.0}, WattHours{50.0});
  EXPECT_DOUBLE_EQ(b.discharge_by(WattHours{20.0}).value(), 20.0);
  EXPECT_DOUBLE_EQ(b.charge_by(WattHours{5.0}).value(), 5.0);
  EXPECT_DOUBLE_EQ(b.charge().value(), 35.0);
}

TEST(Battery, RejectsNegativeAmounts) {
  Battery b(WattHours{100.0});
  EXPECT_THROW(b.charge_by(WattHours{-1.0}), InvalidArgument);
  EXPECT_THROW(b.discharge_by(WattHours{-1.0}), InvalidArgument);
}

TEST(Battery, SolarTripBookkeeping) {
  // A day of trips: drive (discharge EC), harvest (charge EI); SOC
  // drifts by the net.
  Battery b(WattHours{1000.0}, WattHours{500.0});
  for (int trip = 0; trip < 5; ++trip) {
    b.discharge_by(WattHours{60.0});
    b.charge_by(WattHours{18.0});
  }
  EXPECT_NEAR(b.charge().value(), 500.0 - 5 * (60.0 - 18.0), 1e-9);
}

}  // namespace
}  // namespace sunchase::ev
