#include "sunchase/ev/consumption.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"

namespace sunchase::ev {
namespace {

TEST(QuadraticConsumption, MatchesEquationSix) {
  // E[Wh] = S[km] * (a V^2 + b): 2 km at 20 km/h with a=0.01, b=33
  // -> 2 * (4 + 33) = 74 Wh.
  const QuadraticConsumption model(0.01, 33.0, "test");
  const WattHours e = model.consumption(kilometers(2.0), kmh(20.0));
  EXPECT_NEAR(e.value(), 74.0, 1e-9);
}

TEST(QuadraticConsumption, Validation) {
  EXPECT_THROW(QuadraticConsumption(-0.1, 33.0, "x"), InvalidArgument);
  EXPECT_THROW(QuadraticConsumption(0.01, 0.0, "x"), InvalidArgument);
  const QuadraticConsumption ok(0.0, 10.0, "x");
  EXPECT_DOUBLE_EQ(ok.consumption(kilometers(1.0), kmh(50.0)).value(), 10.0);
}

TEST(QuadraticConsumption, RejectsBadArguments) {
  const QuadraticConsumption model(0.01, 33.0, "x");
  EXPECT_THROW((void)model.consumption(kilometers(1.0), kmh(0.0)),
               InvalidArgument);
  EXPECT_THROW((void)model.consumption(Meters{-5.0}, kmh(15.0)),
               InvalidArgument);
}

TEST(QuadraticConsumption, ZeroDistanceIsZeroEnergy) {
  const QuadraticConsumption model(0.01, 33.0, "x");
  EXPECT_DOUBLE_EQ(model.consumption(Meters{0.0}, kmh(15.0)).value(), 0.0);
}

TEST(LvPrototype, ReproducesPaperTableValues) {
  // Table R-I row A1-B1: 1852 m in 441.7 s -> 15.095 km/h, EC1 = 65.28 Wh.
  const auto lv = make_lv_prototype();
  const MetersPerSecond v = Meters{1852.0} / Seconds{441.7};
  const WattHours e = lv->consumption(Meters{1852.0}, v);
  EXPECT_NEAR(e.value(), 65.28, 0.5);
  EXPECT_EQ(lv->name(), "Lv prototype");
}

TEST(LvPrototype, SecondPaperRow) {
  // Table R-I row A4-B4: 1433 m in 341.2 s, EC1 = 50.51 Wh.
  const auto lv = make_lv_prototype();
  const MetersPerSecond v = Meters{1433.0} / Seconds{341.2};
  EXPECT_NEAR(lv->consumption(Meters{1433.0}, v).value(), 50.51, 0.5);
}

TEST(TeslaModelS, ReproducesPaperTableValues) {
  // Table R-I row A1-B1: EC2 = 173.63 Wh over 1852 m at ~15.1 km/h.
  const auto tesla = make_tesla_model_s();
  const MetersPerSecond v = Meters{1852.0} / Seconds{441.7};
  EXPECT_NEAR(tesla->consumption(Meters{1852.0}, v).value(), 173.63, 3.0);
  EXPECT_EQ(tesla->name(), "Tesla Model S");
}

TEST(TeslaModelS, ConsumesRoughly2point7TimesLv) {
  const auto lv = make_lv_prototype();
  const auto tesla = make_tesla_model_s();
  const MetersPerSecond v = kmh(15.0);
  const double ratio = tesla->consumption(kilometers(2.0), v).value() /
                       lv->consumption(kilometers(2.0), v).value();
  EXPECT_NEAR(ratio, 2.66, 0.15);
}

TEST(Consumption, MonotoneInSpeedAndDistance) {
  const auto lv = make_lv_prototype();
  EXPECT_LT(lv->consumption(kilometers(1.0), kmh(15.0)).value(),
            lv->consumption(kilometers(1.0), kmh(40.0)).value());
  EXPECT_LT(lv->consumption(kilometers(1.0), kmh(15.0)).value(),
            lv->consumption(kilometers(2.0), kmh(15.0)).value());
}

// Property: energy is additive over distance splits.
class ConsumptionAdditivity : public ::testing::TestWithParam<double> {};

TEST_P(ConsumptionAdditivity, SplitDistanceSumsExactly) {
  const double split_km = GetParam();
  const auto lv = make_lv_prototype();
  const MetersPerSecond v = kmh(16.0);
  const WattHours whole = lv->consumption(kilometers(2.0), v);
  const WattHours first = lv->consumption(kilometers(split_km), v);
  const WattHours second = lv->consumption(kilometers(2.0 - split_km), v);
  EXPECT_NEAR(whole.value(), (first + second).value(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Splits, ConsumptionAdditivity,
                         ::testing::Values(0.1, 0.5, 1.0, 1.5, 1.9));

}  // namespace
}  // namespace sunchase::ev
