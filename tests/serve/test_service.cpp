#include "sunchase/serve/service.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sunchase/common/error.h"
#include "sunchase/core/world_store.h"
#include "sunchase/obs/profiler.h"
#include "sunchase/obs/query_log.h"
#include "sunchase/obs/trace.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/serve/json.h"
#include "sunchase/serve/query_ledger.h"
#include "../core/core_fixture.h"

namespace sunchase::serve {
namespace {

HttpRequest make_request(std::string method, std::string target,
                         std::string body = {}) {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

/// A socketless service over a fresh 10x10 grid world — the
/// listener/engine split under test: every endpoint exercised without
/// a single byte on a wire.
class ServeServiceTest : public ::testing::Test {
 protected:
  ServeServiceTest()
      : city_(roadnet::GridCityOptions{}),
        store_(test::RoutingEnv::make_init(city_.graph())),
        service_(store_) {}

  JsonValue call(const HttpRequest& request, int expected_status) {
    const HttpResponse response = service_.handle(request);
    EXPECT_EQ(response.status, expected_status) << response.body;
    return JsonValue::parse(response.body);
  }

  static std::string plan_body(roadnet::NodeId origin,
                               roadnet::NodeId destination) {
    return "{\"origin\":" + std::to_string(origin) +
           ",\"destination\":" + std::to_string(destination) +
           ",\"departure\":\"08:30\"}";
  }

  roadnet::GridCity city_;
  core::WorldStore store_;
  RouteService service_;
};

TEST_F(ServeServiceTest, HealthzReportsWorldVersionAndDrainState) {
  JsonValue body = call(make_request("GET", "/healthz"), 200);
  EXPECT_EQ(body.string_or("status", ""), "ok");
  EXPECT_DOUBLE_EQ(body.number_or("world_version", 0), 1.0);
  EXPECT_DOUBLE_EQ(body.number_or("queries_recorded", -1), 0.0);

  service_.set_draining(true);
  body = call(make_request("GET", "/healthz?probe=1"), 200);
  EXPECT_EQ(body.string_or("status", ""), "draining");
  service_.set_draining(false);
}

TEST_F(ServeServiceTest, HealthzCarriesUptimeQueriesServedAndDrainingFlag) {
  JsonValue body = call(make_request("GET", "/healthz"), 200);
  const JsonValue* draining = body.find("draining");
  ASSERT_NE(draining, nullptr);
  EXPECT_FALSE(draining->as_bool());
  EXPECT_GE(body.number_or("uptime_seconds", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(body.number_or("queries_served", -1.0), 0.0);

  // Serving a plan bumps queries_served; draining flips the flag while
  // the status string degrades in step.
  call(make_request("POST", "/plan",
                    plan_body(city_.node_at(0, 0), city_.node_at(5, 5))),
       200);
  body = call(make_request("GET", "/healthz"), 200);
  EXPECT_DOUBLE_EQ(body.number_or("queries_served", -1.0), 1.0);

  service_.set_draining(true);
  body = call(make_request("GET", "/healthz"), 200);
  ASSERT_NE(body.find("draining"), nullptr);
  EXPECT_TRUE(body.find("draining")->as_bool());
  service_.set_draining(false);
}

TEST_F(ServeServiceTest, PlanReturnsCandidatesAndRecordsLedgerEntry) {
  const JsonValue body =
      call(make_request("POST", "/plan", plan_body(0, 87)), 200);
  EXPECT_DOUBLE_EQ(body.number_or("query_id", 0), 1.0);
  EXPECT_DOUBLE_EQ(body.number_or("world_version", 0), 1.0);
  EXPECT_EQ(body.string_or("pricing", ""), "slot");
  const JsonValue* candidates = body.find("candidates");
  ASSERT_NE(candidates, nullptr);
  ASSERT_FALSE(candidates->as_array().empty());
  const JsonValue& shortest = candidates->as_array()[0];
  EXPECT_TRUE(shortest.find("shortest_time")->as_bool());
  EXPECT_GT(shortest.number_or("travel_time_s", 0), 0.0);
  EXPECT_GT(body.find("stats")->number_or("labels_created", 0), 0.0);

  EXPECT_EQ(service_.ledger().recorded(), 1u);
  EXPECT_TRUE(service_.ledger().find(1).has_value());
}

TEST_F(ServeServiceTest, PlanHonorsPerRequestOverrides) {
  const std::string body =
      "{\"origin\":0,\"destination\":55,\"departure\":\"09:00\","
      "\"pricing\":\"exact\",\"vehicle\":1,\"time_dependent\":false}";
  const JsonValue response = call(make_request("POST", "/plan", body), 200);
  EXPECT_EQ(response.string_or("pricing", ""), "exact");
}

TEST_F(ServeServiceTest, PlanRejectsMalformedBodies) {
  const std::pair<const char*, int> cases[] = {
      {"", 400},                                             // not JSON
      {"{\"origin\":0,\"departure\":\"08:00\"}", 400},       // no destination
      {"{\"origin\":0,\"destination\":3}", 400},             // no departure
      {"{\"origin\":-1,\"destination\":3,\"departure\":\"08:00\"}", 400},
      {"{\"origin\":0.5,\"destination\":3,\"departure\":\"08:00\"}", 400},
      {"{\"origin\":0,\"destination\":3,\"departure\":\"25:99\"}", 400},
      {"{\"origin\":0,\"destination\":3,\"departure\":\"08:00\","
       "\"pricing\":\"psychic\"}",
       400},
      {"{\"origin\":0,\"destination\":3,\"departure\":\"08:00\","
       "\"time_budget\":-1}",
       400},
      {"{\"origin\":0,\"destination\":99999,\"departure\":\"08:00\"}", 400},
  };
  for (const auto& [body, status] : cases) {
    const HttpResponse response =
        service_.handle(make_request("POST", "/plan", body));
    EXPECT_EQ(response.status, status) << body;
    EXPECT_NE(JsonValue::parse(response.body).find("error"), nullptr) << body;
  }
}

TEST_F(ServeServiceTest, PlanRejectsNonFiniteAndFractionalTimeBudgets) {
  // Regression for the NaN/inf bypass: "1e999" parses to +inf and used
  // to sail past the `< 0` check, then poison the search's time bound
  // (NaN comparisons are all false, silently disabling the prune).
  // Every such body must die at the parser with an error naming the
  // `time_budget` request field.
  const char* bad[] = {
      "{\"origin\":0,\"destination\":3,\"departure\":\"08:00\","
      "\"time_budget\":1e999}",
      "{\"origin\":0,\"destination\":3,\"departure\":\"08:00\","
      "\"time_budget\":-1e999}",
      "{\"origin\":0,\"destination\":3,\"departure\":\"08:00\","
      "\"time_budget\":0.5}",
  };
  for (const char* body : bad) {
    const HttpResponse response =
        service_.handle(make_request("POST", "/plan", body));
    EXPECT_EQ(response.status, 400) << body;
    const JsonValue parsed = JsonValue::parse(response.body);
    const JsonValue* error = parsed.find("error");
    ASSERT_NE(error, nullptr) << body;
    EXPECT_NE(error->as_string().find("time_budget"), std::string::npos)
        << error->as_string();
  }
  // A bare NaN literal is not JSON at all: rejected by the parser.
  const HttpResponse nan_body = service_.handle(make_request(
      "POST", "/plan",
      "{\"origin\":0,\"destination\":3,\"departure\":\"08:00\","
      "\"time_budget\":NaN}"));
  EXPECT_EQ(nan_body.status, 400) << nan_body.body;
}

TEST_F(ServeServiceTest, PlanAcceptsPruningAndEpsilonOverrides) {
  const std::string body =
      "{\"origin\":0,\"destination\":87,\"departure\":\"08:30\","
      "\"time_budget\":1.5,\"epsilon\":0.05,"
      "\"prune_with_lower_bounds\":false}";
  const JsonValue response = call(make_request("POST", "/plan", body), 200);
  const JsonValue* stats = response.find("stats");
  ASSERT_NE(stats, nullptr);
  // Pruning off: no lower-bound build; the relaxed merge may or may
  // not fire but its counter must be reported.
  EXPECT_DOUBLE_EQ(stats->number_or("lower_bound_seconds", -1.0), 0.0);
  EXPECT_GE(stats->number_or("labels_merged_epsilon", -1.0), 0.0);
  EXPECT_GE(stats->number_or("labels_pruned_bound", -1.0), 0.0);
}

TEST_F(ServeServiceTest, PlanRejectsBadEpsilon) {
  const char* bad[] = {
      "{\"origin\":0,\"destination\":3,\"departure\":\"08:00\","
      "\"epsilon\":-1}",
      "{\"origin\":0,\"destination\":3,\"departure\":\"08:00\","
      "\"epsilon\":1e999}",
  };
  for (const char* body : bad) {
    const HttpResponse response =
        service_.handle(make_request("POST", "/plan", body));
    EXPECT_EQ(response.status, 400) << body;
    const JsonValue parsed = JsonValue::parse(response.body);
    const JsonValue* error = parsed.find("error");
    ASSERT_NE(error, nullptr) << body;
    EXPECT_NE(error->as_string().find("epsilon"), std::string::npos)
        << error->as_string();
  }
}

TEST_F(ServeServiceTest, UnplannableQueryIs422NotA400) {
  // A one-label budget exhausts mid-search: well-formed request, no
  // routable answer — the 422 contract.
  RouteServiceOptions options;
  options.mlc.max_labels = 1;
  RouteService strangled(store_, options);
  const HttpResponse response =
      strangled.handle(make_request("POST", "/plan", plan_body(0, 87)));
  EXPECT_EQ(response.status, 422) << response.body;
}

TEST_F(ServeServiceTest, MethodAndPathMismatchesAnswer405And404) {
  EXPECT_EQ(service_.handle(make_request("GET", "/plan")).status, 405);
  EXPECT_EQ(service_.handle(make_request("POST", "/healthz")).status, 405);
  EXPECT_EQ(service_.handle(make_request("POST", "/metrics")).status, 405);
  EXPECT_EQ(service_.handle(make_request("POST", "/explain/1")).status, 405);
  EXPECT_EQ(service_.handle(make_request("GET", "/nope")).status, 404);
  EXPECT_EQ(service_.handle(make_request("GET", "/")).status, 404);
}

TEST_F(ServeServiceTest, BatchPlansEveryQueryAndAssignsDenseIds) {
  const std::string body =
      "{\"queries\":["
      "{\"origin\":0,\"destination\":42,\"departure\":\"08:00\"},"
      "{\"origin\":7,\"destination\":93,\"departure\":\"12:15\"},"
      "{\"origin\":55,\"destination\":3,\"departure\":\"16:45\"}]}";
  const JsonValue response = call(make_request("POST", "/batch", body), 200);
  const JsonValue* stats = response.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->number_or("queries", 0), 3.0);
  EXPECT_DOUBLE_EQ(stats->number_or("ok", 0), 3.0);
  EXPECT_DOUBLE_EQ(stats->number_or("failed", -1), 0.0);

  const JsonValue* rows = response.find("results");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->as_array().size(), 3u);
  for (const JsonValue& row : rows->as_array()) {
    EXPECT_EQ(row.string_or("status", ""), "ok");
    const double id = row.number_or("query_id", 0);
    EXPECT_GE(id, 1.0);
    EXPECT_LE(id, 3.0);
    EXPECT_TRUE(service_.ledger()
                    .find(static_cast<std::uint64_t>(id))
                    .has_value());
  }
  EXPECT_EQ(service_.ledger().recorded(), 3u);
}

TEST_F(ServeServiceTest, BatchOverTheQueryCapIs413) {
  RouteServiceOptions options;
  options.max_batch_queries = 2;
  RouteService small(store_, options);
  const std::string body =
      "{\"queries\":["
      "{\"origin\":0,\"destination\":1,\"departure\":\"08:00\"},"
      "{\"origin\":0,\"destination\":2,\"departure\":\"08:00\"},"
      "{\"origin\":0,\"destination\":3,\"departure\":\"08:00\"}]}";
  EXPECT_EQ(small.handle(make_request("POST", "/batch", body)).status, 413);
  EXPECT_EQ(small.handle(make_request("POST", "/batch",
                                      "{\"queries\":[]}")).status,
            400);
}

TEST_F(ServeServiceTest, ExplainReplaysConservatively) {
  call(make_request("POST", "/plan", plan_body(0, 87)), 200);
  const JsonValue explain = call(make_request("GET", "/explain/1"), 200);
  EXPECT_TRUE(explain.find("conserves")->as_bool());
  EXPECT_NEAR(explain.number_or("max_deviation", 1.0), 0.0, 1e-9);
  EXPECT_NE(explain.find("ledger"), nullptr);
}

TEST_F(ServeServiceTest, ExplainStaysPinnedAcrossPublishes) {
  // Answer a query on world v1, then publish shading that contradicts
  // v1 everywhere. The explain replay must still balance against the
  // v1-pinned criteria — a replay on the new world would deviate.
  call(make_request("POST", "/plan", plan_body(0, 87)), 200);

  std::string observations = "{\"observations\":[";
  for (roadnet::EdgeId e = 0; e < city_.graph().edge_count(); ++e) {
    for (int slot = 32; slot <= 74; ++slot) {
      if (e != 0 || slot != 32) observations += ',';
      observations += "{\"edge\":" + std::to_string(e) +
                      ",\"slot\":" + std::to_string(slot) +
                      ",\"shaded_fraction\":0.95}";
    }
  }
  observations += "]}";
  const JsonValue publish =
      call(make_request("POST", "/world/publish", observations), 200);
  EXPECT_DOUBLE_EQ(publish.number_or("world_version", 0), 2.0);
  EXPECT_DOUBLE_EQ(publish.number_or("coverage", 0), 1.0);

  const JsonValue explain = call(make_request("GET", "/explain/1"), 200);
  EXPECT_DOUBLE_EQ(explain.number_or("world_version", 0), 1.0);
  EXPECT_TRUE(explain.find("conserves")->as_bool());

  // A fresh plan sees the new snapshot.
  const JsonValue fresh =
      call(make_request("POST", "/plan", plan_body(0, 87)), 200);
  EXPECT_DOUBLE_EQ(fresh.number_or("world_version", 0), 2.0);
}

TEST_F(ServeServiceTest, ExplainAnswers404ForUnknownAndEvictedIds) {
  EXPECT_EQ(service_.handle(make_request("GET", "/explain/7")).status, 404);
  EXPECT_EQ(service_.handle(make_request("GET", "/explain/0")).status, 404);
  EXPECT_EQ(service_.handle(make_request("GET", "/explain/abc")).status, 400);
  EXPECT_EQ(service_.handle(
                    make_request("GET",
                                 "/explain/99999999999999999999999"))
                .status,
            400);

  RouteServiceOptions options;
  options.ledger_capacity = 1;
  RouteService tiny(store_, options);
  EXPECT_EQ(tiny.handle(make_request("POST", "/plan", plan_body(0, 9)))
                .status,
            200);
  EXPECT_EQ(tiny.handle(make_request("POST", "/plan", plan_body(0, 12)))
                .status,
            200);
  EXPECT_EQ(tiny.handle(make_request("GET", "/explain/1")).status, 404);
  EXPECT_EQ(tiny.handle(make_request("GET", "/explain/2")).status, 200);
}

TEST_F(ServeServiceTest, EmptyBodyPublishRollsTheVersion) {
  const JsonValue response =
      call(make_request("POST", "/world/publish", "  \r\n"), 200);
  EXPECT_DOUBLE_EQ(response.number_or("world_version", 0), 2.0);
  EXPECT_DOUBLE_EQ(response.number_or("observations", -1), 0.0);
  EXPECT_EQ(store_.current()->version(), 2u);
}

TEST_F(ServeServiceTest, PublishRejectsMalformedObservations) {
  EXPECT_EQ(service_.handle(make_request("POST", "/world/publish",
                                         "{\"observations\":[{}]}"))
                .status,
            400);
  EXPECT_EQ(service_.handle(
                    make_request("POST", "/world/publish", "{\"x\":1}"))
                .status,
            400);
  EXPECT_EQ(store_.current()->version(), 1u);
}

TEST_F(ServeServiceTest, MetricsEndpointEmitsPrometheusText) {
  call(make_request("POST", "/plan", plan_body(0, 31)), 200);
  const HttpResponse response = service_.handle(make_request("GET", "/metrics"));
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("serve_plans"), std::string::npos);
  ASSERT_FALSE(response.headers.empty());
  EXPECT_NE(response.headers[0].second.find("text/plain"),
            std::string::npos);
}

TEST_F(ServeServiceTest, ResponsesEchoTheRequestTraceId) {
  const std::string trace_id = "0123456789abcdeffedcba9876543210";
  HttpRequest request =
      make_request("POST", "/plan", plan_body(0, 87));
  request.headers.emplace_back("traceparent",
                               "00-" + trace_id + "-00000000000000a1-01");
  const HttpResponse response = service_.handle(request);
  EXPECT_EQ(response.status, 200);

  const std::string* echoed = response.header("x-sunchase-request-id");
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(*echoed, trace_id);
  // The response traceparent keeps the same trace id. With span
  // recording off (this test) the inbound span id passes through
  // unchanged — W3C pass-through; with the tracer on it would be the
  // serve.request span id instead.
  const std::string* parent = response.header("traceparent");
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(parent->size(), 55u);
  EXPECT_EQ(parent->substr(0, 36), "00-" + trace_id + "-");
  EXPECT_EQ(parent->substr(36, 16), "00000000000000a1");
}

TEST_F(ServeServiceTest, MalformedTraceparentFallsBackToAFreshId) {
  for (const char* bad : {"", "garbage", "00-zz-aa-01",
                          "00-00000000000000000000000000000000-"
                          "00000000000000a1-01"}) {
    HttpRequest request = make_request("GET", "/healthz");
    if (*bad != '\0') request.headers.emplace_back("traceparent", bad);
    const HttpResponse response = service_.handle(request);
    const std::string* echoed = response.header("x-sunchase-request-id");
    ASSERT_NE(echoed, nullptr) << bad;
    EXPECT_EQ(echoed->size(), 32u) << bad;
    EXPECT_NE(*echoed, std::string(32, '0')) << bad;
  }
  // Errors echo the id too — that is what makes 4xx logs greppable.
  HttpRequest request = make_request("POST", "/plan", "not json");
  request.headers.emplace_back(
      "traceparent", "00-0123456789abcdeffedcba9876543210-"
                     "00000000000000a1-01");
  const HttpResponse response = service_.handle(request);
  EXPECT_EQ(response.status, 400);
  const std::string* echoed = response.header("x-sunchase-request-id");
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(*echoed, "0123456789abcdeffedcba9876543210");
}

TEST_F(ServeServiceTest, QueryLogRecordsCarryTheRequestTraceId) {
  std::ostringstream sink;
  obs::QueryLog log(sink);
  RouteServiceOptions options;
  options.query_log = &log;
  RouteService logged(store_, options);

  const std::string trace_id = "00000000000010ad0000000000000001";
  HttpRequest request = make_request("POST", "/plan", plan_body(0, 42));
  request.headers.emplace_back("traceparent",
                               "00-" + trace_id + "-00000000000000a1-01");
  EXPECT_EQ(logged.handle(request).status, 200);

  EXPECT_NE(sink.str().find("\"trace_id\":\"" + trace_id + "\""),
            std::string::npos)
      << sink.str();

  // /debug/queries serves the same record from the in-memory tail.
  const HttpResponse debug =
      logged.handle(make_request("GET", "/debug/queries?n=8"));
  ASSERT_EQ(debug.status, 200) << debug.body;
  const JsonValue body = JsonValue::parse(debug.body);
  EXPECT_TRUE(body.find("enabled")->as_bool());
  EXPECT_DOUBLE_EQ(body.number_or("count", 0), 1.0);
  const JsonValue& row = body.find("queries")->as_array().front();
  EXPECT_EQ(row.string_or("trace_id", ""), trace_id);
  EXPECT_EQ(row.string_or("mode", ""), "plan");
}

TEST_F(ServeServiceTest, DebugQueriesWithoutALogSaysDisabled) {
  const JsonValue body = call(make_request("GET", "/debug/queries"), 200);
  EXPECT_FALSE(body.find("enabled")->as_bool());
  EXPECT_DOUBLE_EQ(body.number_or("count", -1), 0.0);
  EXPECT_TRUE(body.find("queries")->as_array().empty());
}

TEST_F(ServeServiceTest, DebugWorldsReportsLineageAcrossPublishes) {
  JsonValue body = call(make_request("GET", "/debug/worlds"), 200);
  EXPECT_DOUBLE_EQ(body.number_or("current_version", 0), 1.0);
  ASSERT_EQ(body.find("lineage")->as_array().size(), 1u);
  EXPECT_TRUE(body.find("lineage")->as_array()[0].find("current")
                  ->as_bool());

  // Answer a query (pins v1 in the ledger), then publish v2: lineage
  // shows both, v2 current, v1 alive because the ledger still pins it.
  call(make_request("POST", "/plan", plan_body(0, 87)), 200);
  call(make_request("POST", "/world/publish", ""), 200);

  body = call(make_request("GET", "/debug/worlds"), 200);
  EXPECT_DOUBLE_EQ(body.number_or("current_version", 0), 2.0);
  const auto& rows = body.find("lineage")->as_array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].number_or("version", 0), 1.0);
  EXPECT_FALSE(rows[0].find("current")->as_bool());
  EXPECT_TRUE(rows[0].find("alive")->as_bool());
  EXPECT_GE(rows[0].number_or("pins", 0), 1.0);
  EXPECT_DOUBLE_EQ(rows[1].number_or("version", 0), 2.0);
  EXPECT_TRUE(rows[1].find("current")->as_bool());
  EXPECT_NE(body.find("slot_cache"), nullptr);
}

TEST_F(ServeServiceTest, DebugEndpointsRejectWrongMethodsAndBadParams) {
  EXPECT_EQ(service_.handle(make_request("POST", "/debug/trace")).status,
            405);
  EXPECT_EQ(service_.handle(make_request("POST", "/debug/queries")).status,
            405);
  EXPECT_EQ(service_.handle(make_request("POST", "/debug/worlds")).status,
            405);
  EXPECT_EQ(service_.handle(make_request("GET", "/debug/nope")).status, 404);
  EXPECT_EQ(
      service_.handle(make_request("GET", "/debug/trace?since=abc")).status,
      400);
  EXPECT_EQ(
      service_.handle(make_request("GET", "/debug/queries?n=-3")).status,
      400);
}

TEST_F(ServeServiceTest, DebugProfileServesJsonAndCollapsedAndResets) {
  obs::Profiler::global().reset();
  // Deterministic folds: sample a synthetic span directly, no sampler
  // thread involved.
  {
    const obs::SpanTimer span("svc.test");
    obs::Profiler::global().sample_once();
  }

  const JsonValue body =
      call(make_request("GET", "/debug/profile?format=json"), 200);
  EXPECT_FALSE(body.find("running") == nullptr);
  EXPECT_GE(body.number_or("samples_total", -1.0), 1.0);
  EXPECT_GE(body.number_or("interval_ms", 0.0), 1.0);
  ASSERT_NE(body.find("stacks"), nullptr);
  EXPECT_TRUE(body.find("stacks")->is_array());

  // Default format is collapsed-stack text.
  const HttpResponse collapsed =
      service_.handle(make_request("GET", "/debug/profile"));
  EXPECT_EQ(collapsed.status, 200);
  EXPECT_NE(collapsed.body.find("svc.test 1"), std::string::npos)
      << collapsed.body;

  // ?reset=1 answers with the folds it drops, then starts fresh.
  const HttpResponse drained =
      service_.handle(make_request("GET", "/debug/profile?reset=1"));
  EXPECT_NE(drained.body.find("svc.test"), std::string::npos);
  const HttpResponse empty =
      service_.handle(make_request("GET", "/debug/profile"));
  EXPECT_EQ(empty.body.find("svc.test"), std::string::npos);

  // Guard rails: wrong method 405, unknown format 400.
  EXPECT_EQ(service_.handle(make_request("POST", "/debug/profile")).status,
            405);
  EXPECT_EQ(
      service_.handle(make_request("GET", "/debug/profile?format=perf"))
          .status,
      400);
  obs::Profiler::global().reset();
}

TEST_F(ServeServiceTest, DebugProfileCapturesLiveBatchStacksUnderSampler) {
  // The acceptance path: a live /batch under a running sampler must
  // eventually fold serve.request;batch.query;... — the worker-pool
  // spans re-parented under the ingress span via SpanStackScope.
  obs::Profiler::global().reset();
  obs::Profiler::global().start(obs::Profiler::Options{1});

  std::string batch = "{\"queries\":[";
  for (int i = 0; i < 16; ++i) {
    if (i != 0) batch += ',';
    batch += plan_body(city_.node_at(0, i % 10),
                       city_.node_at(9, (i * 3) % 10));
  }
  batch += "]}";

  bool found = false;
  for (int attempt = 0; attempt < 50 && !found; ++attempt) {
    call(make_request("POST", "/batch", batch), 200);
    for (const obs::ProfileEntry& entry :
         obs::Profiler::global().entries())
      if (entry.stack.rfind("serve.request;batch.query", 0) == 0)
        found = true;
  }
  obs::Profiler::global().stop();
  obs::Profiler::global().reset();
  EXPECT_TRUE(found)
      << "no serve.request;batch.query fold after 50 batches";
}

TEST_F(ServeServiceTest, PlanResponsesAndLedgerCarryCpuAccounting) {
  const JsonValue body = call(
      make_request("POST", "/plan",
                   plan_body(city_.node_at(1, 1), city_.node_at(8, 8))),
      200);
  const JsonValue* stats = body.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->number_or("cpu_ms", 0.0), 0.0);

  const auto id =
      static_cast<std::uint64_t>(body.number_or("query_id", 0.0));
  const auto entry = service_.ledger().find(id);
  ASSERT_TRUE(entry.has_value());
  EXPECT_GT(entry->cpu_ms, 0.0);
  EXPECT_GT(entry->labels_created, 0u);

  // /explain surfaces the same accounting next to the energy ledger.
  const JsonValue explain =
      call(make_request("GET", "/explain/" + std::to_string(id)), 200);
  const JsonValue* accounting = explain.find("cost_accounting");
  ASSERT_NE(accounting, nullptr);
  EXPECT_GT(accounting->number_or("cpu_ms", 0.0), 0.0);
  EXPECT_GT(accounting->number_or("labels_created", 0.0), 0.0);
}

TEST_F(ServeServiceTest, BatchResponsesAndLedgerCarryCpuSeconds) {
  const std::string batch =
      "{\"queries\":[" +
      plan_body(city_.node_at(0, 0), city_.node_at(5, 5)) + "," +
      plan_body(city_.node_at(2, 2), city_.node_at(9, 9)) + "]}";
  const JsonValue body = call(make_request("POST", "/batch", batch), 200);
  // Batch-level stats report the summed worker CPU of the request...
  const JsonValue* stats = body.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->number_or("cpu_seconds", 0.0), 0.0);
  // ...and each answered query's own share lands in its ledger entry.
  const JsonValue* results = body.find("results");
  ASSERT_NE(results, nullptr);
  for (const JsonValue& result : results->as_array()) {
    const auto id =
        static_cast<std::uint64_t>(result.number_or("query_id", 0.0));
    const auto entry = service_.ledger().find(id);
    ASSERT_TRUE(entry.has_value());
    EXPECT_GT(entry->cpu_ms, 0.0);
  }
}

TEST_F(ServeServiceTest, MetricsSupportsJsonFormatAndRejectsUnknown) {
  call(make_request("POST", "/plan",
                    plan_body(city_.node_at(0, 0), city_.node_at(5, 5))),
       200);
  const HttpResponse json =
      service_.handle(make_request("GET", "/metrics?format=json"));
  EXPECT_EQ(json.status, 200);
  const JsonValue doc = JsonValue::parse(json.body);
  EXPECT_NE(doc.find("histograms"), nullptr);
  EXPECT_NE(json.body.find("\"p99\":"), std::string::npos);
  // Unknown format answers 400; the labeled window series are asserted
  // in test_server.cpp, where requests flow through HttpServer (the
  // layer that owns serve.latency_seconds{endpoint=...}).
  EXPECT_EQ(service_.handle(make_request("GET", "/metrics?format=xml"))
                .status,
            400);
}

TEST(ServeRouteLabel, MapsTargetsOntoABoundedSet) {
  EXPECT_STREQ(RouteService::route_label("/plan"), "/plan");
  EXPECT_STREQ(RouteService::route_label("/batch"), "/batch");
  EXPECT_STREQ(RouteService::route_label("/healthz?probe=1"), "/healthz");
  EXPECT_STREQ(RouteService::route_label("/explain/42"), "/explain");
  EXPECT_STREQ(RouteService::route_label("/debug/trace?since=9"), "/debug");
  EXPECT_STREQ(RouteService::route_label("/metrics"), "/metrics");
  EXPECT_STREQ(RouteService::route_label("/world/publish"),
               "/world/publish");
  EXPECT_STREQ(RouteService::route_label("/" + std::string(4096, 'x')),
               "other");
  EXPECT_STREQ(RouteService::route_label(""), "other");
}

/// The tentpole acceptance path: a traced /plan under concurrent
/// 8-worker /batch load must yield (a) the request-id echo, (b) a
/// QueryLog record with the same trace_id and (c) a /debug/trace
/// export where the query's mlc.search span parents — transitively —
/// back to the ingress serve.request span.
TEST_F(ServeServiceTest, TraceSpansParentToTheIngressRequestUnderBatchLoad) {
  struct TracerGuard {
    TracerGuard() {
      obs::Tracer::global().clear();
      obs::Tracer::global().set_enabled(true);
    }
    ~TracerGuard() {
      obs::Tracer::global().set_enabled(false);
      obs::Tracer::global().clear();
    }
  } tracer_guard;

  std::ostringstream sink;
  obs::QueryLog log(sink);
  RouteServiceOptions options;
  options.batch_workers = 8;
  options.query_log = &log;
  RouteService service(store_, options);

  std::string batch = "{\"queries\":[";
  for (int i = 0; i < 6; ++i) {
    if (i != 0) batch += ',';
    batch += "{\"origin\":" + std::to_string(i) +
             ",\"destination\":" + std::to_string(90 - i) +
             ",\"departure\":\"08:00\"}";
  }
  batch += "]}";

  std::vector<std::thread> load;
  for (int t = 0; t < 2; ++t)
    load.emplace_back([&service, &batch] {
      const HttpResponse response =
          service.handle(make_request("POST", "/batch", batch));
      EXPECT_EQ(response.status, 200) << response.body;
    });

  const std::string trace_id = "0123456789abcdeffedcba9876543210";
  HttpRequest plan = make_request("POST", "/plan", plan_body(0, 87));
  plan.headers.emplace_back("traceparent",
                            "00-" + trace_id + "-00000000000000a1-01");
  const HttpResponse response = service.handle(plan);
  ASSERT_EQ(response.status, 200) << response.body;

  for (std::thread& thread : load) thread.join();

  // (a) the echo.
  const std::string* echoed = response.header("x-sunchase-request-id");
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(*echoed, trace_id);

  // (b) the query log record.
  EXPECT_NE(sink.str().find("\"trace_id\":\"" + trace_id + "\""),
            std::string::npos);

  // (c) the parented span export.
  const HttpResponse debug =
      service.handle(make_request("GET", "/debug/trace"));
  ASSERT_EQ(debug.status, 200);
  const JsonValue doc = JsonValue::parse(debug.body);
  EXPECT_GT(doc.number_or("now_us", 0), 0.0);

  struct Span {
    std::string name;
    std::string parent;
  };
  std::map<std::string, Span> by_id;  // span_id -> span
  std::string mlc_span;
  for (const JsonValue& event : doc.find("traceEvents")->as_array()) {
    const JsonValue* args = event.find("args");
    if (args == nullptr) continue;
    const std::string id = args->string_or("span_id", "");
    by_id[id] = Span{event.string_or("name", ""),
                     args->string_or("parent_id", "")};
    if (event.string_or("name", "") == "mlc.search" &&
        args->string_or("trace_id", "") == trace_id)
      mlc_span = id;
  }
  ASSERT_FALSE(mlc_span.empty())
      << "no mlc.search span carries the request trace id: " << debug.body;

  // Walk parent pointers until the ingress span; every hop must exist.
  std::string at = mlc_span;
  std::vector<std::string> chain;
  while (true) {
    const auto it = by_id.find(at);
    ASSERT_NE(it, by_id.end()) << "broken parent chain at " << at;
    chain.push_back(it->second.name);
    if (it->second.name == "serve.request") {
      // The ingress span parents to the caller's traceparent span id.
      EXPECT_EQ(it->second.parent, "00000000000000a1");
      break;
    }
    ASSERT_LE(chain.size(), 16u) << "parent cycle";
    at = it->second.parent;
  }
  EXPECT_GE(chain.size(), 2u);  // at least mlc.search -> serve.request
}

TEST(ServeLedger, RecordsFindsAndEvictsByRingPosition) {
  QueryLedger ledger(2);
  LedgerEntry entry;
  entry.origin = 1;
  EXPECT_EQ(ledger.record(entry), 1u);
  entry.origin = 2;
  EXPECT_EQ(ledger.record(entry), 2u);
  ASSERT_TRUE(ledger.find(1).has_value());
  EXPECT_EQ(ledger.find(1)->origin, 1u);

  entry.origin = 3;
  EXPECT_EQ(ledger.record(entry), 3u);
  EXPECT_FALSE(ledger.find(1).has_value());  // evicted by id 3
  ASSERT_TRUE(ledger.find(2).has_value());
  EXPECT_EQ(ledger.find(3)->origin, 3u);
  EXPECT_FALSE(ledger.find(0).has_value());
  EXPECT_FALSE(ledger.find(4).has_value());  // not recorded yet
  EXPECT_EQ(ledger.recorded(), 3u);
}

TEST(ServeLedger, ZeroCapacityIsRejected) {
  EXPECT_THROW(QueryLedger ledger(0), InvalidArgument);
}

}  // namespace
}  // namespace sunchase::serve
