#include "sunchase/serve/service.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/core/world_store.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/serve/json.h"
#include "sunchase/serve/query_ledger.h"
#include "../core/core_fixture.h"

namespace sunchase::serve {
namespace {

HttpRequest make_request(std::string method, std::string target,
                         std::string body = {}) {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

/// A socketless service over a fresh 10x10 grid world — the
/// listener/engine split under test: every endpoint exercised without
/// a single byte on a wire.
class ServeServiceTest : public ::testing::Test {
 protected:
  ServeServiceTest()
      : city_(roadnet::GridCityOptions{}),
        store_(test::RoutingEnv::make_init(city_.graph())),
        service_(store_) {}

  JsonValue call(const HttpRequest& request, int expected_status) {
    const HttpResponse response = service_.handle(request);
    EXPECT_EQ(response.status, expected_status) << response.body;
    return JsonValue::parse(response.body);
  }

  static std::string plan_body(roadnet::NodeId origin,
                               roadnet::NodeId destination) {
    return "{\"origin\":" + std::to_string(origin) +
           ",\"destination\":" + std::to_string(destination) +
           ",\"departure\":\"08:30\"}";
  }

  roadnet::GridCity city_;
  core::WorldStore store_;
  RouteService service_;
};

TEST_F(ServeServiceTest, HealthzReportsWorldVersionAndDrainState) {
  JsonValue body = call(make_request("GET", "/healthz"), 200);
  EXPECT_EQ(body.string_or("status", ""), "ok");
  EXPECT_DOUBLE_EQ(body.number_or("world_version", 0), 1.0);
  EXPECT_DOUBLE_EQ(body.number_or("queries_recorded", -1), 0.0);

  service_.set_draining(true);
  body = call(make_request("GET", "/healthz?probe=1"), 200);
  EXPECT_EQ(body.string_or("status", ""), "draining");
  service_.set_draining(false);
}

TEST_F(ServeServiceTest, PlanReturnsCandidatesAndRecordsLedgerEntry) {
  const JsonValue body =
      call(make_request("POST", "/plan", plan_body(0, 87)), 200);
  EXPECT_DOUBLE_EQ(body.number_or("query_id", 0), 1.0);
  EXPECT_DOUBLE_EQ(body.number_or("world_version", 0), 1.0);
  EXPECT_EQ(body.string_or("pricing", ""), "slot");
  const JsonValue* candidates = body.find("candidates");
  ASSERT_NE(candidates, nullptr);
  ASSERT_FALSE(candidates->as_array().empty());
  const JsonValue& shortest = candidates->as_array()[0];
  EXPECT_TRUE(shortest.find("shortest_time")->as_bool());
  EXPECT_GT(shortest.number_or("travel_time_s", 0), 0.0);
  EXPECT_GT(body.find("stats")->number_or("labels_created", 0), 0.0);

  EXPECT_EQ(service_.ledger().recorded(), 1u);
  EXPECT_TRUE(service_.ledger().find(1).has_value());
}

TEST_F(ServeServiceTest, PlanHonorsPerRequestOverrides) {
  const std::string body =
      "{\"origin\":0,\"destination\":55,\"departure\":\"09:00\","
      "\"pricing\":\"exact\",\"vehicle\":1,\"time_dependent\":false}";
  const JsonValue response = call(make_request("POST", "/plan", body), 200);
  EXPECT_EQ(response.string_or("pricing", ""), "exact");
}

TEST_F(ServeServiceTest, PlanRejectsMalformedBodies) {
  const std::pair<const char*, int> cases[] = {
      {"", 400},                                             // not JSON
      {"{\"origin\":0,\"departure\":\"08:00\"}", 400},       // no destination
      {"{\"origin\":0,\"destination\":3}", 400},             // no departure
      {"{\"origin\":-1,\"destination\":3,\"departure\":\"08:00\"}", 400},
      {"{\"origin\":0.5,\"destination\":3,\"departure\":\"08:00\"}", 400},
      {"{\"origin\":0,\"destination\":3,\"departure\":\"25:99\"}", 400},
      {"{\"origin\":0,\"destination\":3,\"departure\":\"08:00\","
       "\"pricing\":\"psychic\"}",
       400},
      {"{\"origin\":0,\"destination\":3,\"departure\":\"08:00\","
       "\"time_budget\":-1}",
       400},
      {"{\"origin\":0,\"destination\":99999,\"departure\":\"08:00\"}", 400},
  };
  for (const auto& [body, status] : cases) {
    const HttpResponse response =
        service_.handle(make_request("POST", "/plan", body));
    EXPECT_EQ(response.status, status) << body;
    EXPECT_NE(JsonValue::parse(response.body).find("error"), nullptr) << body;
  }
}

TEST_F(ServeServiceTest, UnplannableQueryIs422NotA400) {
  // A one-label budget exhausts mid-search: well-formed request, no
  // routable answer — the 422 contract.
  RouteServiceOptions options;
  options.mlc.max_labels = 1;
  RouteService strangled(store_, options);
  const HttpResponse response =
      strangled.handle(make_request("POST", "/plan", plan_body(0, 87)));
  EXPECT_EQ(response.status, 422) << response.body;
}

TEST_F(ServeServiceTest, MethodAndPathMismatchesAnswer405And404) {
  EXPECT_EQ(service_.handle(make_request("GET", "/plan")).status, 405);
  EXPECT_EQ(service_.handle(make_request("POST", "/healthz")).status, 405);
  EXPECT_EQ(service_.handle(make_request("POST", "/metrics")).status, 405);
  EXPECT_EQ(service_.handle(make_request("POST", "/explain/1")).status, 405);
  EXPECT_EQ(service_.handle(make_request("GET", "/nope")).status, 404);
  EXPECT_EQ(service_.handle(make_request("GET", "/")).status, 404);
}

TEST_F(ServeServiceTest, BatchPlansEveryQueryAndAssignsDenseIds) {
  const std::string body =
      "{\"queries\":["
      "{\"origin\":0,\"destination\":42,\"departure\":\"08:00\"},"
      "{\"origin\":7,\"destination\":93,\"departure\":\"12:15\"},"
      "{\"origin\":55,\"destination\":3,\"departure\":\"16:45\"}]}";
  const JsonValue response = call(make_request("POST", "/batch", body), 200);
  const JsonValue* stats = response.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->number_or("queries", 0), 3.0);
  EXPECT_DOUBLE_EQ(stats->number_or("ok", 0), 3.0);
  EXPECT_DOUBLE_EQ(stats->number_or("failed", -1), 0.0);

  const JsonValue* rows = response.find("results");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->as_array().size(), 3u);
  for (const JsonValue& row : rows->as_array()) {
    EXPECT_EQ(row.string_or("status", ""), "ok");
    const double id = row.number_or("query_id", 0);
    EXPECT_GE(id, 1.0);
    EXPECT_LE(id, 3.0);
    EXPECT_TRUE(service_.ledger()
                    .find(static_cast<std::uint64_t>(id))
                    .has_value());
  }
  EXPECT_EQ(service_.ledger().recorded(), 3u);
}

TEST_F(ServeServiceTest, BatchOverTheQueryCapIs413) {
  RouteServiceOptions options;
  options.max_batch_queries = 2;
  RouteService small(store_, options);
  const std::string body =
      "{\"queries\":["
      "{\"origin\":0,\"destination\":1,\"departure\":\"08:00\"},"
      "{\"origin\":0,\"destination\":2,\"departure\":\"08:00\"},"
      "{\"origin\":0,\"destination\":3,\"departure\":\"08:00\"}]}";
  EXPECT_EQ(small.handle(make_request("POST", "/batch", body)).status, 413);
  EXPECT_EQ(small.handle(make_request("POST", "/batch",
                                      "{\"queries\":[]}")).status,
            400);
}

TEST_F(ServeServiceTest, ExplainReplaysConservatively) {
  call(make_request("POST", "/plan", plan_body(0, 87)), 200);
  const JsonValue explain = call(make_request("GET", "/explain/1"), 200);
  EXPECT_TRUE(explain.find("conserves")->as_bool());
  EXPECT_NEAR(explain.number_or("max_deviation", 1.0), 0.0, 1e-9);
  EXPECT_NE(explain.find("ledger"), nullptr);
}

TEST_F(ServeServiceTest, ExplainStaysPinnedAcrossPublishes) {
  // Answer a query on world v1, then publish shading that contradicts
  // v1 everywhere. The explain replay must still balance against the
  // v1-pinned criteria — a replay on the new world would deviate.
  call(make_request("POST", "/plan", plan_body(0, 87)), 200);

  std::string observations = "{\"observations\":[";
  for (roadnet::EdgeId e = 0; e < city_.graph().edge_count(); ++e) {
    for (int slot = 32; slot <= 74; ++slot) {
      if (e != 0 || slot != 32) observations += ',';
      observations += "{\"edge\":" + std::to_string(e) +
                      ",\"slot\":" + std::to_string(slot) +
                      ",\"shaded_fraction\":0.95}";
    }
  }
  observations += "]}";
  const JsonValue publish =
      call(make_request("POST", "/world/publish", observations), 200);
  EXPECT_DOUBLE_EQ(publish.number_or("world_version", 0), 2.0);
  EXPECT_DOUBLE_EQ(publish.number_or("coverage", 0), 1.0);

  const JsonValue explain = call(make_request("GET", "/explain/1"), 200);
  EXPECT_DOUBLE_EQ(explain.number_or("world_version", 0), 1.0);
  EXPECT_TRUE(explain.find("conserves")->as_bool());

  // A fresh plan sees the new snapshot.
  const JsonValue fresh =
      call(make_request("POST", "/plan", plan_body(0, 87)), 200);
  EXPECT_DOUBLE_EQ(fresh.number_or("world_version", 0), 2.0);
}

TEST_F(ServeServiceTest, ExplainAnswers404ForUnknownAndEvictedIds) {
  EXPECT_EQ(service_.handle(make_request("GET", "/explain/7")).status, 404);
  EXPECT_EQ(service_.handle(make_request("GET", "/explain/0")).status, 404);
  EXPECT_EQ(service_.handle(make_request("GET", "/explain/abc")).status, 400);
  EXPECT_EQ(service_.handle(
                    make_request("GET",
                                 "/explain/99999999999999999999999"))
                .status,
            400);

  RouteServiceOptions options;
  options.ledger_capacity = 1;
  RouteService tiny(store_, options);
  EXPECT_EQ(tiny.handle(make_request("POST", "/plan", plan_body(0, 9)))
                .status,
            200);
  EXPECT_EQ(tiny.handle(make_request("POST", "/plan", plan_body(0, 12)))
                .status,
            200);
  EXPECT_EQ(tiny.handle(make_request("GET", "/explain/1")).status, 404);
  EXPECT_EQ(tiny.handle(make_request("GET", "/explain/2")).status, 200);
}

TEST_F(ServeServiceTest, EmptyBodyPublishRollsTheVersion) {
  const JsonValue response =
      call(make_request("POST", "/world/publish", "  \r\n"), 200);
  EXPECT_DOUBLE_EQ(response.number_or("world_version", 0), 2.0);
  EXPECT_DOUBLE_EQ(response.number_or("observations", -1), 0.0);
  EXPECT_EQ(store_.current()->version(), 2u);
}

TEST_F(ServeServiceTest, PublishRejectsMalformedObservations) {
  EXPECT_EQ(service_.handle(make_request("POST", "/world/publish",
                                         "{\"observations\":[{}]}"))
                .status,
            400);
  EXPECT_EQ(service_.handle(
                    make_request("POST", "/world/publish", "{\"x\":1}"))
                .status,
            400);
  EXPECT_EQ(store_.current()->version(), 1u);
}

TEST_F(ServeServiceTest, MetricsEndpointEmitsPrometheusText) {
  call(make_request("POST", "/plan", plan_body(0, 31)), 200);
  const HttpResponse response = service_.handle(make_request("GET", "/metrics"));
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("serve_plans"), std::string::npos);
  ASSERT_FALSE(response.headers.empty());
  EXPECT_NE(response.headers[0].second.find("text/plain"),
            std::string::npos);
}

TEST(ServeLedger, RecordsFindsAndEvictsByRingPosition) {
  QueryLedger ledger(2);
  LedgerEntry entry;
  entry.origin = 1;
  EXPECT_EQ(ledger.record(entry), 1u);
  entry.origin = 2;
  EXPECT_EQ(ledger.record(entry), 2u);
  ASSERT_TRUE(ledger.find(1).has_value());
  EXPECT_EQ(ledger.find(1)->origin, 1u);

  entry.origin = 3;
  EXPECT_EQ(ledger.record(entry), 3u);
  EXPECT_FALSE(ledger.find(1).has_value());  // evicted by id 3
  ASSERT_TRUE(ledger.find(2).has_value());
  EXPECT_EQ(ledger.find(3)->origin, 3u);
  EXPECT_FALSE(ledger.find(0).has_value());
  EXPECT_FALSE(ledger.find(4).has_value());  // not recorded yet
  EXPECT_EQ(ledger.recorded(), 3u);
}

TEST(ServeLedger, ZeroCapacityIsRejected) {
  EXPECT_THROW(QueryLedger ledger(0), InvalidArgument);
}

}  // namespace
}  // namespace sunchase::serve
