#include "sunchase/serve/json.h"

#include <gtest/gtest.h>

#include <string>

#include "sunchase/common/error.h"

namespace sunchase::serve {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("0").as_number(), 0.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_TRUE(JsonValue::parse("  42  ").is_number());
}

TEST(Json, ObjectPreservesMemberOrder) {
  const JsonValue doc = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  const JsonValue::Object& members = doc.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue doc = JsonValue::parse(
      R"({"queries": [{"origin": 3, "destination": 9}, {"origin": 4}]})");
  const JsonValue* queries = doc.find("queries");
  ASSERT_NE(queries, nullptr);
  ASSERT_EQ(queries->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(queries->as_array()[0].number_or("destination", -1), 9.0);
  EXPECT_DOUBLE_EQ(queries->as_array()[1].number_or("destination", -1), -1.0);
}

TEST(Json, DecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\n\t")").as_string(), "a\"b\\c\n\t");
  EXPECT_EQ(JsonValue::parse(R"("\u00e9")").as_string(), "\xC3\xA9");
  // U+1F31E (sun with face) as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(JsonValue::parse(R"("\ud83c\udf1e")").as_string(),
            "\xF0\x9F\x8C\x9E");
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* text :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "01", "1.", "+1", "nul",
        "\"unterminated", "\"bad\\q\"", "\"\\ud83c\"", "{\"a\":1} trailing",
        "\"ctrl\x01\"", "'single'"}) {
    EXPECT_THROW((void)JsonValue::parse(text), InvalidArgument) << text;
  }
}

TEST(Json, RejectsNestingBeyondDepthLimit) {
  std::string deep;
  for (int i = 0; i < 10; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 10; ++i) deep += "]";
  EXPECT_NO_THROW((void)JsonValue::parse(deep, 16));
  EXPECT_THROW((void)JsonValue::parse(deep, 8), InvalidArgument);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const JsonValue doc = JsonValue::parse(R"({"n": 1, "s": "x"})");
  EXPECT_THROW((void)doc.as_number(), InvalidArgument);
  EXPECT_THROW((void)doc.find("n")->as_string(), InvalidArgument);
  EXPECT_THROW((void)doc.find("s")->as_number(), InvalidArgument);
  EXPECT_THROW((void)doc.number_or("s", 0.0), InvalidArgument);
}

TEST(Json, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(JsonValue::parse("[1, 2]").find("origin"), nullptr);
  EXPECT_EQ(JsonValue::parse("{}").find("origin"), nullptr);
}

TEST(Json, OptionalFieldFallbacks) {
  const JsonValue doc = JsonValue::parse(R"({"pricing": "slot"})");
  EXPECT_EQ(doc.string_or("pricing", "exact"), "slot");
  EXPECT_EQ(doc.string_or("missing", "exact"), "exact");
  EXPECT_DOUBLE_EQ(doc.number_or("missing", 1.5), 1.5);
}

TEST(Json, QuoteRoundTripsThroughParser) {
  const std::string nasty = "line\nbreak \"quoted\" back\\slash \x01 end";
  const JsonValue parsed = JsonValue::parse(json_quote(nasty));
  EXPECT_EQ(parsed.as_string(), nasty);
  EXPECT_EQ(json_escape("plain"), "plain");
}

}  // namespace
}  // namespace sunchase::serve
