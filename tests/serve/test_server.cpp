#include "sunchase/serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "sunchase/common/error.h"
#include "sunchase/core/world_store.h"
#include "sunchase/crowd/crowd_map.h"
#include "sunchase/crowd/world_fold.h"
#include "sunchase/obs/metrics.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/serve/client.h"
#include "sunchase/serve/json.h"
#include "../core/core_fixture.h"

namespace sunchase::serve {
namespace {

constexpr const char* kPlanBody =
    "{\"origin\":0,\"destination\":87,\"departure\":\"08:30\"}";

/// One running server on an ephemeral port over a fresh grid world.
/// Tests tweak `options` before start(); stop() is safe to call twice.
struct ServerHarness {
  explicit ServerHarness(HttpServerOptions opts = {},
                         RouteServiceOptions service_opts = {},
                         roadnet::GridCityOptions city_opts = {})
      : city(city_opts),
        store(test::RoutingEnv::make_init(city.graph())),
        service(store, service_opts) {
    opts.port = 0;
    server = std::make_unique<HttpServer>(service, opts);
    server->start();
  }

  [[nodiscard]] HttpClient client(double timeout_seconds = 10.0) const {
    return HttpClient("127.0.0.1", server->port(), timeout_seconds);
  }

  void stop() {
    server->request_stop();
    server->join();
  }

  roadnet::GridCity city;
  core::WorldStore store;
  RouteService service;
  std::unique_ptr<HttpServer> server;
};

TEST(ServeServer, BindsEphemeralPortAndAnswersOverTheWire) {
  ServerHarness harness;
  EXPECT_NE(harness.server->port(), 0);
  EXPECT_TRUE(harness.server->running());

  HttpClient client = harness.client();
  const HttpResponse health = client.get("/healthz");
  ASSERT_EQ(health.status, 200);
  EXPECT_EQ(JsonValue::parse(health.body).string_or("status", ""), "ok");

  const HttpResponse plan = client.post("/plan", kPlanBody);
  ASSERT_EQ(plan.status, 200) << plan.body;
  const JsonValue body = JsonValue::parse(plan.body);
  EXPECT_DOUBLE_EQ(body.number_or("world_version", 0), 1.0);
  EXPECT_FALSE(body.find("candidates")->as_array().empty());

  harness.stop();
  EXPECT_FALSE(harness.server->running());
  EXPECT_TRUE(harness.service.draining());
}

TEST(ServeServer, KeepAliveReusesOneConnection) {
  ServerHarness harness;
  HttpClient client = harness.client();
  ASSERT_EQ(client.get("/healthz").status, 200);
  ASSERT_TRUE(client.connected());
  ASSERT_EQ(client.post("/plan", kPlanBody).status, 200);
  ASSERT_EQ(client.get("/metrics").status, 200);
  EXPECT_TRUE(client.connected());
  harness.stop();
}

TEST(ServeServer, MetricsExposeCumulativeAndWindowLatencyQuantiles) {
  // The labeled per-endpoint latency series live in HttpServer::process,
  // so they only exist once a request has crossed a real socket.
  ServerHarness harness;
  HttpClient client = harness.client();
  ASSERT_EQ(client.post("/plan", kPlanBody).status, 200);

  // Prometheus view: the rolling-window family renders alongside the
  // cumulative one.
  const HttpResponse prom = client.get("/metrics");
  ASSERT_EQ(prom.status, 200);
  EXPECT_NE(prom.body.find("serve_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.body.find("serve_latency_seconds_window_bucket"),
            std::string::npos);
  EXPECT_NE(prom.body.find("endpoint=\"/plan\""), std::string::npos);

  // JSON view: both keys present, each with quantile convenience fields.
  const HttpResponse json = client.get("/metrics?format=json");
  ASSERT_EQ(json.status, 200);
  EXPECT_NE(
      json.body.find("serve.latency_seconds{endpoint=\\\"/plan\\\"}"),
      std::string::npos)
      << json.body;
  EXPECT_NE(
      json.body.find(
          "serve.latency_seconds.window{endpoint=\\\"/plan\\\"}"),
      std::string::npos);
  EXPECT_NE(json.body.find("\"p99\":"), std::string::npos);
  harness.stop();
}

TEST(ServeServer, MalformedRequestLineAnswers400AndCloses) {
  ServerHarness harness;
  HttpClient client = harness.client();
  client.send_bytes("bogus nonsense\r\n\r\n");
  EXPECT_EQ(client.read_response().status, 400);
  harness.stop();
}

TEST(ServeServer, OversizedBodyAnswers413) {
  HttpServerOptions opts;
  opts.limits.max_body_bytes = 64;
  ServerHarness harness(opts);
  HttpClient client = harness.client();
  const HttpResponse response =
      client.post("/plan", std::string(128, 'x'));
  EXPECT_EQ(response.status, 413);
  harness.stop();
}

TEST(ServeServer, RequestSplitAcrossManySendsStillParses) {
  ServerHarness harness;
  HttpClient client = harness.client();
  const std::string wire = std::string("POST /plan HTTP/1.1\r\n") +
                           "content-length: " +
                           std::to_string(std::string(kPlanBody).size()) +
                           "\r\n\r\n" + kPlanBody;
  // Dribble the request a few bytes per send with real pauses — the
  // server's recv loop must reassemble it across arbitrary boundaries.
  for (std::size_t i = 0; i < wire.size(); i += 7) {
    client.send_bytes(std::string_view(wire).substr(i, 7));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(client.read_response().status, 200);
  harness.stop();
}

TEST(ServeServer, StalledMidRequestAnswers408) {
  HttpServerOptions opts;
  opts.read_timeout_seconds = 0.3;
  ServerHarness harness(opts);
  HttpClient client = harness.client();
  client.send_bytes("POST /plan HTTP/1.1\r\ncontent-length: 500\r\n\r\nstub");
  const HttpResponse response = client.read_response();
  EXPECT_EQ(response.status, 408);
  harness.stop();
}

TEST(ServeServer, DeadlineExpiryMidPlanAnswers504) {
  HttpServerOptions opts;
  opts.deadline_seconds = 0.05;
  opts.test_hooks = true;
  ServerHarness harness(opts);
  HttpClient client = harness.client();
  const HttpResponse response = client.request(
      "POST", "/plan", kPlanBody, {{"x-sunchase-test-delay-ms", "150"}});
  EXPECT_EQ(response.status, 504);
  // The un-delayed request still fits the deadline.
  EXPECT_EQ(client.post("/plan", kPlanBody).status, 200);
  harness.stop();
}

TEST(ServeServer, QueueOverflowAnswers429) {
  HttpServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.read_timeout_seconds = 0.5;
  opts.test_hooks = true;
  ServerHarness harness(opts);

  // Occupy the only worker with a deliberately slow request...
  HttpClient busy = harness.client();
  std::thread slow([&busy] {
    (void)busy.request("POST", "/plan", kPlanBody,
                       {{"x-sunchase-test-delay-ms", "400"}});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...fill the one queue slot with a second connection...
  HttpClient queued = harness.client();
  queued.send_bytes("GET /healthz HTTP/1.1\r\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...so the third connection is rejected at the door.
  HttpClient rejected = harness.client();
  rejected.send_bytes("GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(rejected.read_response().status, 429);

  slow.join();
  busy.close();
  queued.close();
  harness.stop();
}

TEST(ServeServer, GracefulDrainAnswersInFlightRequests) {
  HttpServerOptions opts;
  opts.workers = 2;
  opts.test_hooks = true;
  ServerHarness harness(opts);

  HttpClient inflight = harness.client();
  HttpResponse slow_response;
  std::thread slow([&] {
    slow_response = inflight.request(
        "POST", "/plan", kPlanBody, {{"x-sunchase-test-delay-ms", "300"}});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  harness.server->request_stop();
  harness.server->join();
  slow.join();

  // The in-flight request was answered, not dropped, before join()
  // returned; new connections are refused once drained.
  EXPECT_EQ(slow_response.status, 200) << slow_response.body;
  EXPECT_TRUE(harness.service.draining());
  HttpClient late = harness.client(0.5);
  EXPECT_THROW((void)late.get("/healthz"), IoError);
}

/// The ISSUE acceptance check, over real sockets: publish new worlds
/// while a /batch is in flight. Every row's /explain must replay
/// bit-identically (conserves == true) against the world version the
/// row reports — proof each in-flight query stayed pinned to the
/// snapshot that priced it.
TEST(ServeServer, PublishDuringBatchKeepsRowsPinnedToTheirWorlds) {
  RouteServiceOptions service_opts;
  // Keep every row of every attempt explainable (3 attempts x 400
  // queries must not evict the rows the assertions below replay).
  service_opts.ledger_capacity = 2048;
  // A single batch worker keeps the batch in flight long enough for the
  // publishes below to land while rows are still being planned; the
  // default 12x12 grid is so small that exact MLC answers a whole batch
  // between two scheduler ticks, so this test plans a 30x30 city where
  // every query does real Pareto work.
  service_opts.batch_workers = 1;
  roadnet::GridCityOptions city_opts;
  city_opts.rows = 30;
  city_opts.cols = 30;
  ServerHarness harness(HttpServerOptions{}, service_opts, city_opts);
  const auto node_count =
      static_cast<roadnet::NodeId>(harness.city.graph().node_count());

  // Each publish rewrites the shading of every edge around the batch's
  // departure slots, so successive world versions price routes
  // differently — a replay against the wrong version would not
  // conserve, which is what gives the conserves assertions teeth.
  // Publishing goes straight through the store (the same hot-swap the
  // HTTP admin endpoint drives, which the service tests and the CI
  // smoke cover): an in-process publish lands in microseconds, so it
  // reliably splits a running batch instead of racing a full admin
  // round-trip against the batch finishing first.
  const auto crowd_map = [&harness](double shaded_fraction) {
    auto crowd = std::make_unique<crowd::CrowdSolarMap>(
        harness.city.graph().edge_count(),
        [](roadnet::EdgeId, TimeOfDay) { return 0.0; },
        crowd::CrowdSolarMap::Options{});
    for (roadnet::EdgeId e = 0; e < harness.city.graph().edge_count(); ++e)
      for (int slot = 36; slot <= 48; ++slot)
        crowd->report({e, slot, shaded_fraction, 0});
    return crowd;
  };
  const auto sunny = crowd_map(0.95);
  const auto shady = crowd_map(0.05);

  // Exact pricing keeps each query off the shared slot cache, and the
  // wide time budget fattens every Pareto frontier — together they slow
  // the batch enough that the publishes below land while rows are
  // still being planned.
  std::string batch =
      "{\"pricing\":\"exact\",\"time_budget\":3.0,\"queries\":[";
  for (roadnet::NodeId i = 0; i < 400; ++i) {
    const roadnet::NodeId origin = (i * 131) % node_count;
    roadnet::NodeId destination = (i * 197 + node_count / 2) % node_count;
    if (destination == origin) destination = (destination + 1) % node_count;
    if (i != 0) batch += ',';
    batch += "{\"origin\":" + std::to_string(origin) +
             ",\"destination\":" + std::to_string(destination) +
             ",\"departure\":\"09:" + std::to_string(10 + i % 45) + "\"}";
  }
  batch += "]}";

  std::uint64_t version_min = 0;
  std::uint64_t version_max = 0;
  JsonValue response;
  // Publishing mid-batch is a race against the batch finishing first on
  // a fast machine; retry the whole scenario a few times and require at
  // least one attempt to straddle a version bump.
  for (int attempt = 0; attempt < 3 && version_max <= version_min;
       ++attempt) {
    // The server runs in-process, so the planner's per-query run-time
    // histogram (observed as each worker finishes a row — unlike
    // batch.queries_ok, which is bulk-added only after the whole batch)
    // is the precise "rows are in flight right now" signal: publish
    // after a handful of rows completed, with hundreds still to plan.
    obs::Histogram& rows_done =
        obs::Registry::global().histogram("batch.run_seconds");
    const std::uint64_t before = rows_done.snapshot().count;
    const auto rows_reach = [&](std::uint64_t n) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (rows_done.snapshot().count < before + n &&
             std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    };

    HttpClient batcher = harness.client();
    HttpResponse batch_response;
    std::thread batching(
        [&] { batch_response = batcher.post("/batch", batch); });

    rows_reach(20);
    crowd::publish_crowd_world(harness.store, *sunny);
    rows_reach(200);
    crowd::publish_crowd_world(harness.store, *shady);
    batching.join();

    ASSERT_EQ(batch_response.status, 200) << batch_response.body;
    response = JsonValue::parse(batch_response.body);
    const JsonValue* versions = response.find("world_version");
    ASSERT_NE(versions, nullptr);
    version_min =
        static_cast<std::uint64_t>(versions->number_or("min", 0));
    version_max =
        static_cast<std::uint64_t>(versions->number_or("max", 0));
  }
  EXPECT_GT(version_max, version_min)
      << "no publish landed mid-batch in any attempt";

  const JsonValue* rows = response.find("results");
  ASSERT_NE(rows, nullptr);
  std::set<std::uint64_t> versions_seen;
  HttpClient explainer = harness.client();
  for (const JsonValue& row : rows->as_array()) {
    ASSERT_EQ(row.string_or("status", ""), "ok");
    const auto id = static_cast<std::uint64_t>(row.number_or("query_id", 0));
    const auto row_version =
        static_cast<std::uint64_t>(row.number_or("world_version", 0));
    versions_seen.insert(row_version);

    const HttpResponse explained =
        explainer.get("/explain/" + std::to_string(id));
    ASSERT_EQ(explained.status, 200) << explained.body;
    const JsonValue explain = JsonValue::parse(explained.body);
    EXPECT_EQ(static_cast<std::uint64_t>(
                  explain.number_or("world_version", 0)),
              row_version);
    EXPECT_TRUE(explain.find("conserves")->as_bool())
        << "query " << id << " did not replay bit-identically on world "
        << row_version;
  }
  EXPECT_GT(versions_seen.size(), 1u);
  harness.stop();
}

}  // namespace
}  // namespace sunchase::serve
