#include "sunchase/serve/http.h"

#include <gtest/gtest.h>

#include <string>

namespace sunchase::serve {
namespace {

HttpParser parse_all(std::string_view bytes, HttpLimits limits = {}) {
  HttpParser parser(HttpParser::Kind::Request, limits);
  parser.feed(bytes);
  return parser;
}

TEST(HttpParser, ParsesSimpleRequestInOneFeed) {
  HttpParser parser = parse_all(
      "POST /plan HTTP/1.1\r\nhost: x\r\ncontent-length: 4\r\n\r\nbody");
  ASSERT_EQ(parser.state(), HttpParser::State::Complete);
  const HttpMessage& m = parser.message();
  EXPECT_EQ(m.method, "POST");
  EXPECT_EQ(m.target, "/plan");
  EXPECT_EQ(m.version, "HTTP/1.1");
  EXPECT_EQ(m.body, "body");
  ASSERT_NE(m.header("Host"), nullptr);
  EXPECT_EQ(*m.header("HOST"), "x");
}

TEST(HttpParser, PartialReadsAcrossRecvBoundaries) {
  // The wire bytes arrive one at a time — every split point a recv()
  // could produce. The parse must come out identical to a single feed.
  const std::string wire =
      "POST /batch HTTP/1.1\r\ncontent-length: 11\r\n\r\nhello world";
  HttpParser parser;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_EQ(parser.state(), HttpParser::State::NeedMore)
        << "completed early at byte " << i;
    parser.feed(std::string_view(&wire[i], 1));
  }
  ASSERT_EQ(parser.state(), HttpParser::State::Complete);
  EXPECT_EQ(parser.message().target, "/batch");
  EXPECT_EQ(parser.message().body, "hello world");
}

TEST(HttpParser, TruncatedBodyStaysIncompleteAndReportsPartial) {
  HttpParser parser = parse_all(
      "POST /plan HTTP/1.1\r\ncontent-length: 100\r\n\r\nonly a bit");
  EXPECT_EQ(parser.state(), HttpParser::State::NeedMore);
  EXPECT_TRUE(parser.has_partial());
}

TEST(HttpParser, FreshParserHasNoPartial) {
  const HttpParser parser;
  EXPECT_FALSE(parser.has_partial());
}

TEST(HttpParser, PipelinedRequestsCompleteAcrossReset) {
  HttpParser parser = parse_all(
      "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n");
  ASSERT_EQ(parser.state(), HttpParser::State::Complete);
  EXPECT_EQ(parser.message().target, "/healthz");
  parser.reset();
  // The second request was already buffered; reset() re-parses it.
  ASSERT_EQ(parser.state(), HttpParser::State::Complete);
  EXPECT_EQ(parser.message().target, "/metrics");
  parser.reset();
  EXPECT_EQ(parser.state(), HttpParser::State::NeedMore);
  EXPECT_FALSE(parser.has_partial());
}

TEST(HttpParser, AcceptsBareLfLineEndings) {
  HttpParser parser =
      parse_all("GET /healthz HTTP/1.1\ncontent-length: 2\n\nok");
  ASSERT_EQ(parser.state(), HttpParser::State::Complete);
  EXPECT_EQ(parser.message().body, "ok");
}

TEST(HttpParser, MalformedRequestLineIs400) {
  for (const char* wire :
       {"garbage\r\n\r\n", "GET\r\n\r\n", "GET  HTTP/1.1\r\n\r\n",
        "\r\n\r\n"}) {
    HttpParser parser = parse_all(wire);
    ASSERT_EQ(parser.state(), HttpParser::State::Error) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

TEST(HttpParser, UnsupportedVersionIs505) {
  HttpParser parser = parse_all("GET / HTTP/2.0\r\n\r\n");
  ASSERT_EQ(parser.state(), HttpParser::State::Error);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParser, TransferEncodingIs501) {
  HttpParser parser =
      parse_all("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
  ASSERT_EQ(parser.state(), HttpParser::State::Error);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParser, OversizedBodyIs413) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  HttpParser parser =
      parse_all("POST / HTTP/1.1\r\ncontent-length: 17\r\n\r\n", limits);
  ASSERT_EQ(parser.state(), HttpParser::State::Error);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, MalformedContentLengthIs400) {
  for (const char* value : {"12abc", "-1", "0x10", " ", "99999999999999999999"}) {
    HttpParser parser = parse_all(std::string("POST / HTTP/1.1\r\n") +
                                  "content-length: " + value + "\r\n\r\n");
    ASSERT_EQ(parser.state(), HttpParser::State::Error) << value;
    EXPECT_EQ(parser.error_status(), 400) << value;
  }
}

TEST(HttpParser, ConflictingContentLengthsAre400) {
  HttpParser parser = parse_all(
      "POST / HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 5\r\n\r\n");
  ASSERT_EQ(parser.state(), HttpParser::State::Error);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParser, ObsoleteHeaderFoldingIs400) {
  HttpParser parser =
      parse_all("GET / HTTP/1.1\r\nx-a: 1\r\n folded\r\n\r\n");
  ASSERT_EQ(parser.state(), HttpParser::State::Error);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParser, OversizedHeaderBlockIs431) {
  HttpLimits limits;
  limits.max_start_line = 64;
  limits.max_header_bytes = 64;
  HttpParser parser(HttpParser::Kind::Request, limits);
  // Never terminate the header block; the parser must bail once the
  // buffered block exceeds the cap instead of buffering forever.
  const std::string filler = "x-filler: " + std::string(200, 'a') + "\r\n";
  parser.feed("GET / HTTP/1.1\r\n");
  parser.feed(filler);
  ASSERT_EQ(parser.state(), HttpParser::State::Error);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, OverlongRequestLineIs414) {
  HttpLimits limits;
  limits.max_start_line = 32;
  HttpParser parser = parse_all(
      "GET /" + std::string(64, 'a') + " HTTP/1.1\r\n\r\n", limits);
  ASSERT_EQ(parser.state(), HttpParser::State::Error);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(HttpParser, ParsesResponses) {
  HttpParser parser(HttpParser::Kind::Response);
  parser.feed("HTTP/1.1 429 Too Many Requests\r\ncontent-length: 2\r\n\r\nno");
  ASSERT_EQ(parser.state(), HttpParser::State::Complete);
  EXPECT_EQ(parser.message().status, 429);
  EXPECT_EQ(parser.message().reason, "Too Many Requests");
  EXPECT_EQ(parser.message().body, "no");
}

TEST(HttpMessage, KeepAliveSemantics) {
  HttpMessage m;
  m.version = "HTTP/1.1";
  EXPECT_TRUE(m.keep_alive());  // 1.1 default: persistent
  m.headers.emplace_back("connection", "close");
  EXPECT_FALSE(m.keep_alive());

  HttpMessage old;
  old.version = "HTTP/1.0";
  EXPECT_FALSE(old.keep_alive());  // 1.0 default: close
  old.headers.emplace_back("connection", "keep-alive");
  EXPECT_TRUE(old.keep_alive());
}

TEST(HttpResponse, ToBytesRoundTripsThroughParser) {
  HttpResponse response;
  response.status = 200;
  response.set_header("content-type", "application/json");
  response.body = "{\"ok\":true}";

  HttpParser parser(HttpParser::Kind::Response);
  parser.feed(response.to_bytes(/*close_connection=*/false));
  ASSERT_EQ(parser.state(), HttpParser::State::Complete);
  EXPECT_EQ(parser.message().status, 200);
  EXPECT_EQ(parser.message().body, response.body);
  EXPECT_TRUE(parser.message().keep_alive());

  HttpParser closed(HttpParser::Kind::Response);
  closed.feed(response.to_bytes(/*close_connection=*/true));
  ASSERT_EQ(closed.state(), HttpParser::State::Complete);
  EXPECT_FALSE(closed.message().keep_alive());
}

TEST(HttpResponse, SetHeaderReplacesExisting) {
  HttpResponse response;
  response.set_header("content-type", "text/plain");
  response.set_header("Content-Type", "application/json");
  ASSERT_EQ(response.headers.size(), 1u);
  EXPECT_EQ(response.headers[0].second, "application/json");
}

}  // namespace
}  // namespace sunchase::serve
