// Scenario-shaped integration tests mirroring the paper's evaluation
// claims: afternoon (C = 160 W) yields fewer better-solar routes than
// morning/noon; the Tesla finds fewer than Lv's EV; one-day driving
// accumulates positive net extra energy for selected routes.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "sunchase/core/planner.h"
#include "sunchase/core/world.h"
#include "sunchase/ev/battery.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scenegen.h"
#include "sunchase/solar/input_map.h"

namespace sunchase {
namespace {

constexpr std::size_t kLv = 0;
constexpr std::size_t kTesla = 1;

struct World {
  World() : city(make_city_options()), proj(city.options().origin) {
    graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
    scene = std::make_unique<shadow::Scene>(
        generate_scene(*graph, proj, shadow::SceneGenOptions{}));
    profile = std::make_shared<const shadow::ShadingProfile>(
        shadow::ShadingProfile::compute_exact(
            *graph, *scene, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
            TimeOfDay::hms(18, 0)));
    traffic = std::make_shared<const roadnet::UrbanTraffic>(
        roadnet::UrbanTraffic::Options{});
    vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
        ev::make_lv_prototype()));
    vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
        ev::make_tesla_model_s()));
  }

  static roadnet::GridCityOptions make_city_options() {
    roadnet::GridCityOptions opt;
    opt.rows = 9;
    opt.cols = 9;
    return opt;
  }

  /// A fresh snapshot sharing every component except the panel power.
  core::WorldPtr world_at(Watts c) const {
    core::WorldInit init;
    init.graph = graph;
    init.traffic = traffic;
    init.shading = profile;
    init.panel_power = solar::constant_panel_power(c);
    init.vehicles = vehicles;
    return core::World::create(std::move(init));
  }

  roadnet::GridCity city;
  geo::LocalProjection proj;
  std::shared_ptr<const roadnet::RoadGraph> graph;
  std::unique_ptr<shadow::Scene> scene;
  std::shared_ptr<const shadow::ShadingProfile> profile;
  std::shared_ptr<const roadnet::UrbanTraffic> traffic;
  std::vector<std::shared_ptr<const ev::ConsumptionModel>> vehicles;
};

const World& world() {
  static const World w;
  return w;
}

std::vector<std::pair<roadnet::NodeId, roadnet::NodeId>> od_pairs() {
  const auto& w = world();
  return {{w.city.node_at(1, 1), w.city.node_at(7, 6)},
          {w.city.node_at(7, 6), w.city.node_at(1, 1)},
          {w.city.node_at(0, 4), w.city.node_at(8, 4)},
          {w.city.node_at(2, 7), w.city.node_at(6, 0)}};
}

int count_better_solar(const core::WorldPtr& world, std::size_t vehicle,
                       TimeOfDay dep) {
  core::PlannerOptions opt;
  opt.mlc.vehicle = vehicle;
  const core::SunChasePlanner planner(world, opt);
  int better = 0;
  for (const auto& [o, d] : od_pairs()) {
    const core::PlanResult plan = planner.plan(o, d, dep);
    better += static_cast<int>(plan.candidates.size()) - 1;
  }
  return better;
}

TEST(Scenario, WeakerPanelPowerYieldsFewerBetterRoutes) {
  // The mechanism behind the paper's Table R-III (C = 160 W at 16:00
  // kills most better-solar routes): with identical shading, traffic
  // and departure, Eq. 5's extra energy scales with C while the extra
  // consumption does not — so lowering C can only shrink the
  // better-solar set.
  const auto& w = world();
  const auto world_strong = w.world_at(Watts{200.0});
  const auto world_weak = w.world_at(Watts{160.0});
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const int strong = count_better_solar(world_strong, kTesla, dep);
  const int weak = count_better_solar(world_weak, kTesla, dep);
  EXPECT_LE(weak, strong);
}

TEST(Scenario, TeslaFindsNoMoreBetterRoutesThanLv) {
  const auto& w = world();
  const auto snapshot = w.world_at(Watts{200.0});
  const int lv_count = count_better_solar(snapshot, kLv,
                                          TimeOfDay::hms(10, 0));
  const int tesla_count =
      count_better_solar(snapshot, kTesla, TimeOfDay::hms(10, 0));
  EXPECT_LE(tesla_count, lv_count);
}

TEST(Scenario, SelectedRoutesCostLittleExtraTime) {
  // Paper Fig. 9b/10b: extra travel time stays within ~60-80 s for
  // 1-2.5 km urban trips.
  const auto& w = world();
  const core::SunChasePlanner planner(w.world_at(Watts{200.0}));
  for (const auto& [o, d] : od_pairs()) {
    const core::PlanResult plan = planner.plan(o, d, TimeOfDay::hms(11, 0));
    for (std::size_t i = 1; i < plan.candidates.size(); ++i)
      EXPECT_LT(plan.candidates[i].extra_time.value(), 300.0);
  }
}

TEST(Scenario, OneDayDrivingAccumulatesNonNegativeNetExtra) {
  // Simplified Fig. 9/10: over a day of trips, driving the recommended
  // route instead of the shortest-time route never loses net energy
  // (Eq. 5 guarantees each selected trip is net-positive).
  const auto& w = world();
  const core::SunChasePlanner planner(w.world_at(Watts{200.0}));
  ev::Battery battery(WattHours{2000.0}, WattHours{1000.0});
  double net_extra = 0.0;
  int hour = 9;
  for (const auto& [o, d] : od_pairs()) {
    const core::PlanResult plan =
        planner.plan(o, d, TimeOfDay::hms(hour, 0));
    const auto& chosen = plan.recommended();
    battery.discharge_by(chosen.metrics.energy_out);
    battery.charge_by(chosen.metrics.energy_in);
    net_extra += chosen.is_shortest_time ? 0.0 : chosen.extra_energy.value();
    hour += 2;
  }
  EXPECT_GE(net_extra, 0.0);
  EXPECT_GT(battery.charge().value(), 0.0);
}

TEST(Scenario, ReverseTripDiffersOnOneWayStreets) {
  // Paper Table R-I: A2-B2 (reverse of A1-B1) crosses more one-way
  // segments and yields a different Pareto structure.
  const auto& w = world();
  const core::SunChasePlanner planner(w.world_at(Watts{200.0}));
  const auto forward = planner.plan(w.city.node_at(1, 1),
                                    w.city.node_at(7, 6),
                                    TimeOfDay::hms(10, 0));
  const auto reverse = planner.plan(w.city.node_at(7, 6),
                                    w.city.node_at(1, 1),
                                    TimeOfDay::hms(10, 0));
  // The two directions are genuinely different problems.
  EXPECT_NE(forward.pareto_route_count, reverse.pareto_route_count);
}

}  // namespace
}  // namespace sunchase
