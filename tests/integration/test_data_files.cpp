// The shipped sample scenario in data/ must stay loadable and usable
// end-to-end (users start from these files).
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "sunchase/core/planner.h"
#include "sunchase/core/world.h"
#include "sunchase/roadnet/io.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scene_io.h"
#include "sunchase/solar/input_map.h"

#ifndef SUNCHASE_DATA_DIR
#define SUNCHASE_DATA_DIR "data"
#endif

namespace sunchase {
namespace {

TEST(DataFiles, DemoGraphLoadsAndValidates) {
  const auto graph =
      roadnet::read_graph_file(SUNCHASE_DATA_DIR "/demo_downtown.graph");
  EXPECT_EQ(graph.node_count(), 64u);  // 8x8 lattice
  EXPECT_GT(graph.edge_count(), 100u);
  EXPECT_NO_THROW(graph.validate());
}

TEST(DataFiles, DemoSceneLoads) {
  const auto scene =
      shadow::read_scene_file(SUNCHASE_DATA_DIR "/demo_downtown.scene");
  EXPECT_GT(scene.buildings().size(), 30u);
  EXPECT_GT(scene.trees().size(), 5u);
  EXPECT_NEAR(scene.projection().origin().lat_deg, 45.4995, 1e-3);
}

TEST(DataFiles, DemoScenarioPlansEndToEnd) {
  const auto graph =
      roadnet::read_graph_file(SUNCHASE_DATA_DIR "/demo_downtown.graph");
  const auto scene =
      shadow::read_scene_file(SUNCHASE_DATA_DIR "/demo_downtown.scene");
  core::WorldInit init;
  init.graph = std::make_shared<const roadnet::RoadGraph>(graph);
  init.shading = std::make_shared<const shadow::ShadingProfile>(
      shadow::ShadingProfile::compute_exact(graph, scene, geo::DayOfYear{196},
                                            TimeOfDay::hms(9, 0),
                                            TimeOfDay::hms(17, 0)));
  init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
      roadnet::UrbanTraffic::Options{});
  init.panel_power = solar::constant_panel_power(Watts{200.0});
  init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
      ev::make_lv_prototype()));
  const core::SunChasePlanner planner(core::World::create(std::move(init)));
  const auto plan = planner.plan(0, static_cast<roadnet::NodeId>(
                                        graph.node_count() - 1),
                                 TimeOfDay::hms(10, 0));
  ASSERT_FALSE(plan.candidates.empty());
  EXPECT_TRUE(is_connected(plan.candidates.front().route.path, graph));
}

}  // namespace
}  // namespace sunchase
