// End-to-end: synthetic city -> procedural scene -> exact & vision
// shading profiles -> solar input map -> SunChase planner. Asserts the
// invariants the paper's evaluation relies on.
#include <gtest/gtest.h>

#include <memory>

#include "sunchase/core/planner.h"
#include "sunchase/core/world.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scenegen.h"
#include "sunchase/shadow/vision.h"
#include "sunchase/solar/input_map.h"

namespace sunchase {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::GridCityOptions copt;
    copt.rows = 8;
    copt.cols = 8;
    city_ = new roadnet::GridCity(copt);
    proj_ = new geo::LocalProjection(copt.origin);
    scene_ = new shadow::Scene(
        generate_scene(city_->graph(), *proj_, shadow::SceneGenOptions{}));
    profile_ = new shadow::ShadingProfile(shadow::ShadingProfile::compute_exact(
        city_->graph(), *scene_, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
        TimeOfDay::hms(18, 0)));
    core::WorldInit init;
    init.graph = std::make_shared<const roadnet::RoadGraph>(city_->graph());
    init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
        roadnet::UrbanTraffic::Options{});
    init.shading = std::make_shared<const shadow::ShadingProfile>(*profile_);
    init.panel_power = solar::constant_panel_power(Watts{200.0});
    init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
        ev::make_lv_prototype()));
    world_ = new core::WorldPtr(core::World::create(std::move(init)));
  }

  static void TearDownTestSuite() {
    delete world_;
    delete profile_;
    delete scene_;
    delete proj_;
    delete city_;
  }

  static roadnet::GridCity* city_;
  static geo::LocalProjection* proj_;
  static shadow::Scene* scene_;
  static shadow::ShadingProfile* profile_;
  static core::WorldPtr* world_;
};

roadnet::GridCity* PipelineTest::city_ = nullptr;
geo::LocalProjection* PipelineTest::proj_ = nullptr;
shadow::Scene* PipelineTest::scene_ = nullptr;
shadow::ShadingProfile* PipelineTest::profile_ = nullptr;
core::WorldPtr* PipelineTest::world_ = nullptr;

TEST_F(PipelineTest, SceneShadesSomeStreetsButNotAll) {
  int shaded_edges = 0;
  const TimeOfDay morning = TimeOfDay::hms(9, 0);
  for (roadnet::EdgeId e = 0; e < city_->graph().edge_count(); ++e)
    if (profile_->shaded_fraction(e, morning) > 0.05) ++shaded_edges;
  EXPECT_GT(shaded_edges, 0);
  EXPECT_LT(shaded_edges, static_cast<int>(city_->graph().edge_count()));
}

TEST_F(PipelineTest, MiddayHasMoreSunThanMorning) {
  double morning_shade = 0.0, noon_shade = 0.0;
  for (roadnet::EdgeId e = 0; e < city_->graph().edge_count(); ++e) {
    morning_shade += profile_->shaded_fraction(e, TimeOfDay::hms(8, 30));
    noon_shade += profile_->shaded_fraction(e, TimeOfDay::hms(13, 0));
  }
  // High sun -> short shadows: the paper's "most of the road segments
  // were illuminated at noon".
  EXPECT_LT(noon_shade, morning_shade);
}

TEST_F(PipelineTest, PlannerWorksAcrossTheWholeDay) {
  const core::SunChasePlanner planner(*world_);
  for (const int hour : {9, 11, 13, 15, 17}) {
    const core::PlanResult plan = planner.plan(
        city_->node_at(1, 1), city_->node_at(6, 6), TimeOfDay::hms(hour, 0));
    ASSERT_FALSE(plan.candidates.empty()) << "hour " << hour;
    EXPECT_GT(plan.pareto_route_count, 0u);
    for (const auto& cand : plan.candidates) {
      EXPECT_TRUE(is_connected(cand.route.path, city_->graph()));
      EXPECT_GE(cand.metrics.energy_in.value(), 0.0);
      EXPECT_GT(cand.metrics.energy_out.value(), 0.0);
      EXPECT_LE(cand.metrics.solar_time.value(),
                cand.metrics.travel_time.value() + 1e-6);
    }
  }
}

TEST_F(PipelineTest, VisionProfileApproximatesExactProfile) {
  shadow::VisionOptions vopt;
  vopt.meters_per_px = 1.5;  // keep the render fast
  const shadow::VisionPipeline vision(city_->graph(), *scene_, vopt);
  const auto vision_profile = shadow::ShadingProfile::compute(
      city_->graph(), vision.make_estimator(geo::DayOfYear{196}),
      TimeOfDay::hms(10, 0), TimeOfDay::hms(11, 0));
  const auto exact_window = shadow::ShadingProfile::compute_exact(
      city_->graph(), *scene_, geo::DayOfYear{196}, TimeOfDay::hms(10, 0),
      TimeOfDay::hms(11, 0));
  EXPECT_LT(vision_profile.mean_absolute_difference(exact_window), 0.1);
}

TEST_F(PipelineTest, BetterSolarRouteHasMoreSolarTimePerMeterOrMoreInput) {
  const core::SunChasePlanner planner(*world_);
  const core::PlanResult plan = planner.plan(
      city_->node_at(0, 0), city_->node_at(7, 7), TimeOfDay::hms(10, 0));
  if (!plan.has_better_solar()) GTEST_SKIP() << "no better route here";
  const auto& base = plan.candidates.front().metrics;
  const auto& better = plan.recommended().metrics;
  EXPECT_GT(better.energy_in.value(), base.energy_in.value());
}

}  // namespace
}  // namespace sunchase
